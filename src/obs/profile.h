// Per-phase profiling: scoped RAII timers attributing wall time to the
// simulation core's phases (event-source merge machinery, mobility
// generation, packet generation, routing decisions, data transfer).
//
// Accounting is *exclusive*: entering a nested scope stops the clock of the
// enclosing phase and restarts it on exit, so phase totals never double
// count and they sum to the instrumented span exactly. PhaseProfile::total_ns
// is the wall time of the whole run() (measured around the event loop), so
//   coverage = sum(phase ns) / total_ns
// is the fraction of the run the instrumentation can attribute; the
// remainder prints as "other" in the breakdown table.
//
// Cost model: with profiling disabled a PhaseScope is a thread-local load
// and a branch (and with RAPID_OBS=OFF it compiles away entirely); enabled,
// each scope boundary is one steady_clock read. Profiling never touches
// simulation state, so `--profile` output is bit-identical to an unprofiled
// run — it only watches.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>

namespace rapid::obs {

enum class Phase : std::uint8_t {
  kDispatch = 0,   // event-source poll/merge + dispatch bookkeeping
  kMobility = 1,   // MobilityModel contact generation (peek/pop)
  kPacketGen = 2,  // workload packet injection (Router::on_generate)
  kRouting = 3,    // contact open/metadata exchange, next_transfer decisions,
                   // contact_end hooks
  kTransfer = 4,   // copies crossing the air (perform_transfer + loop checks)
  kIngest = 5,     // service engine: contact ingest (tail polls included)
  kQuery = 6,      // service engine: mid-stream queries
  kSnapshot = 7,   // service engine: snapshot save/restore
  kShardSync = 8,  // sharded engine: coordinator time inside window barriers
                   // (cross-shard dispatch + waiting on shard workers)
  kWheelAdvance = 9,  // timer-wheel event core: cursor advance on peek and
                      // head re-indexing after pops (mobility's lazy
                      // generation nests under this but lands in kMobility)
  kCount
};
inline constexpr std::size_t kPhaseCount = static_cast<std::size_t>(Phase::kCount);

const char* phase_name(Phase p);

struct PhaseProfile {
  std::array<std::uint64_t, kPhaseCount> ns{};
  std::array<std::uint64_t, kPhaseCount> calls{};
  // Wall time of the instrumented run() span; 0 when never run.
  std::uint64_t total_ns = 0;
  bool enabled = false;

  std::uint64_t attributed_ns() const;
  // attributed / total in [0, 1]; 0 when total_ns == 0.
  double coverage() const;
  void merge(const PhaseProfile& other);
};

// Renders the phase-breakdown table:
//   phase            calls        ms      %
//   routing           1234      812.4   41.2
//   ...
//   other                -       43.1    2.1
//   total                -     1970.9  100.0   (coverage 97.9%)
void print_phase_table(std::ostream& os, const PhaseProfile& profile);
// The same table as a JSON object (stable key order: catalog order plus
// "other"/"total"), embedded by bench_pr6 and `rapid_bench --metrics`.
std::string phase_table_json(const PhaseProfile& profile, int indent = 2);

}  // namespace rapid::obs
