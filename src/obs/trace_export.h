// Chrome trace_event exporter: renders a trace (obs/trace.h) as JSON that
// loads directly in Perfetto / chrome://tracing.
//
// Mapping: contact open/close become "B"/"E" span pairs on the track (tid)
// of the contact's first node; packet lifecycle and utility events become
// thread-scoped instant events ("i"). Timestamps are simulation seconds
// scaled to microseconds (the trace_event unit), so the viewer's timeline IS
// the simulation clock.
//
// Every entry carries the originating TraceEvent verbatim in its "args"
// ({kind, t, a, b, packet, value} with t at full double precision), which is
// what makes the export lossless: obs/trace_read.h parses those args back
// into the exact event sequence, and tools/trace_query reconstructs packet
// replication trees from the exported file alone.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace rapid::obs {

void write_chrome_trace(std::ostream& os, const std::vector<TraceEvent>& events);
std::string to_chrome_trace(const std::vector<TraceEvent>& events);

}  // namespace rapid::obs
