#include "obs/obs.h"

namespace rapid::obs {

#if RAPID_OBS_ENABLED

namespace {
thread_local ObsContext* tls_current = nullptr;
}  // namespace

ObsContext* current() { return tls_current; }
void set_current(ObsContext* ctx) { tls_current = ctx; }

ContextScope::ContextScope(ObsContext* ctx) : prev_(tls_current) {
  tls_current = ctx;
}

ContextScope::~ContextScope() { tls_current = prev_; }

#endif  // RAPID_OBS_ENABLED

}  // namespace rapid::obs
