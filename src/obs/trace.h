// Structured trace layer: fixed-size binary trace events in a ring buffer.
//
// A TraceEvent records one point of the simulation's story — a contact
// opening or closing, a packet being created, copied, delivered, partially
// transferred or dropped, a utility recompute — stamped with *simulation*
// time, never wall time, so a trace is a pure function of the run and two
// traced runs of the same scenario are bit-identical (the determinism
// contract: tracing on or off never changes figure output, it only watches).
//
// The buffer is a pre-allocated ring: emitting is a bounds check, a struct
// store and an index increment. When the ring wraps, the oldest events are
// overwritten and dropped() counts what was lost — a trace is a window, not
// an unbounded log. chronological() unwinds the ring for export
// (obs/trace_export.h renders Chrome trace_event JSON for Perfetto;
// obs/trace_read.h parses that JSON back for tools/trace_query).
#pragma once

#include <cstdint>
#include <vector>

#include "util/types.h"

namespace rapid::obs {

enum class TraceEventKind : std::uint32_t {
  kContactOpen = 0,   // a,b = nodes; value = capacity bytes
  kContactClose = 1,  // a,b = nodes; value = data bytes moved; packet = interrupted flag
  kPacketCreate = 2,  // a = src, b = dst; value = size
  kPacketCopy = 3,    // a = sender, b = receiver (stored, not delivered); value = size
  kPacketDeliver = 4, // a = sender, b = destination; value = delay-free marker (size)
  kPacketPartial = 5, // a = sender, b = receiver; value = bytes burned mid-air
  kPacketDrop = 6,    // a = dropping node; value = size
  kUtilityRecompute = 7,  // a = node; packet = packet id; value = 0 delay / 1 rate
  kNodeCrash = 8,         // a = node; value = 1 when buffers were dropped
  kNodeRecover = 9,       // a = node (rejoins with stale state)
  kPacketCorrupt = 10,    // a = sender, b = receiver; value = bytes burned
};

// Last enumerator, for exhaustive iteration (obs/trace_read.h).
inline constexpr TraceEventKind kLastTraceEventKind = TraceEventKind::kPacketCorrupt;

const char* trace_event_kind_name(TraceEventKind kind);

struct TraceEvent {
  Time time = 0;  // simulation seconds
  TraceEventKind kind = TraceEventKind::kContactOpen;
  NodeId a = kNoNode;
  NodeId b = kNoNode;
  PacketId packet = kNoPacket;
  std::int64_t value = 0;
};

class TraceBuffer {
 public:
  // capacity == 0 disables the buffer entirely (enabled() == false and
  // emit() must not be called — the RAPID_OBS_TRACE macro guards this).
  explicit TraceBuffer(std::size_t capacity);

  bool enabled() const { return capacity_ != 0; }
  std::size_t capacity() const { return capacity_; }

  void emit(const TraceEvent& e) {
    ring_[next_] = e;
    next_ = next_ + 1 == capacity_ ? 0 : next_ + 1;
    ++total_;
  }

  // Events currently held (<= capacity).
  std::size_t size() const { return total_ < capacity_ ? static_cast<std::size_t>(total_) : capacity_; }
  // Events emitted over the buffer's lifetime.
  std::uint64_t total() const { return total_; }
  // Events lost to ring wrap.
  std::uint64_t dropped() const { return total_ <= capacity_ ? 0 : total_ - capacity_; }

  // The held events, oldest first.
  std::vector<TraceEvent> chronological() const;

 private:
  std::vector<TraceEvent> ring_;
  std::size_t capacity_ = 0;
  std::size_t next_ = 0;      // slot the next event lands in
  std::uint64_t total_ = 0;   // events ever emitted
};

}  // namespace rapid::obs
