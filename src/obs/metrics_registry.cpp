#include "obs/metrics_registry.h"

#include <algorithm>

namespace rapid::obs {

const char* counter_name(Counter c) {
  switch (c) {
    case Counter::kContactDataBytes: return "contact.data_bytes";
    case Counter::kContactDeliveries: return "contact.deliveries";
    case Counter::kContactMetadataBytes: return "contact.metadata_bytes";
    case Counter::kContactPartialBytes: return "contact.partial_bytes";
    case Counter::kContactPartialTransfers: return "contact.partial_transfers";
    case Counter::kContactSessions: return "contact.sessions";
    case Counter::kContactTransfers: return "contact.transfers";
    case Counter::kFaultCorruptedBytes: return "fault.corrupted_bytes";
    case Counter::kFaultCorruptedTransfers: return "fault.corrupted_transfers";
    case Counter::kFaultCrashes: return "fault.crashes";
    case Counter::kFaultMeetingsSuppressed: return "fault.meetings_suppressed";
    case Counter::kFaultMetaDegraded: return "fault.meta_degraded";
    case Counter::kFaultPacketsLost: return "fault.packets_lost";
    case Counter::kFaultRecoveries: return "fault.recoveries";
    case Counter::kFaultTailRetries: return "fault.tail_retries";
    case Counter::kLogMessages: return "log.messages";
    case Counter::kMobilityPops: return "mobility.pops";
    case Counter::kPoolSteals: return "pool.steals";
    case Counter::kPoolSubmitted: return "pool.submitted";
    case Counter::kRouterDrops: return "router.drops";
    case Counter::kServiceContactsIngested: return "service.contacts_ingested";
    case Counter::kServiceQueries: return "service.queries";
    case Counter::kServiceSnapshotBytes: return "service.snapshot_bytes";
    case Counter::kServiceSnapshots: return "service.snapshots";
    case Counter::kShardCrossMeetings: return "shard.cross_meetings";
    case Counter::kShardWindows: return "shard.windows";
    case Counter::kSimEventsFault: return "sim.events.fault";
    case Counter::kSimEventsMeeting: return "sim.events.meeting";
    case Counter::kSimEventsPacket: return "sim.events.packet";
    case Counter::kSimEventsSkipped: return "sim.events.skipped";
    case Counter::kTraceDropped: return "trace.dropped";
    case Counter::kUtilityDelayHits: return "utility.delay_hits";
    case Counter::kUtilityDelayRecomputes: return "utility.delay_recomputes";
    case Counter::kUtilityForgets: return "utility.forgets";
    case Counter::kUtilityRateHits: return "utility.rate_hits";
    case Counter::kUtilityRateRecomputes: return "utility.rate_recomputes";
    case Counter::kWheelAdvances: return "wheel.advances";
    case Counter::kWheelCascades: return "wheel.cascades";
    case Counter::kWheelSchedules: return "wheel.schedules";
    case Counter::kCount: break;
  }
  return "?";
}

const char* gauge_name(Gauge g) {
  switch (g) {
    case Gauge::kPoolMaxQueueDepth: return "pool.max_queue_depth";
    case Gauge::kTraceEvents: return "trace.events";
    case Gauge::kUtilityTrackedPackets: return "utility.tracked_packets";
    case Gauge::kCount: break;
  }
  return "?";
}

const char* hist_name(Hist h) {
  switch (h) {
    case Hist::kContactCapacityBytes: return "contact.capacity_bytes";
    case Hist::kContactTransferBytes: return "contact.transfer_bytes";
    case Hist::kCount: break;
  }
  return "?";
}

namespace {

int bucket_of(std::uint64_t value) {
  int width = 0;
  while (value != 0) {
    ++width;
    value >>= 1;
  }
  return width == 0 ? 0 : width - 1;
}

}  // namespace

void Histogram::observe(std::uint64_t value) {
  ++buckets[static_cast<std::size_t>(bucket_of(value))];
  if (count == 0 || value < min) min = value;
  if (value > max) max = value;
  ++count;
  sum += value;
}

void Histogram::merge(const Histogram& other) {
  if (other.count == 0) return;
  for (int i = 0; i < kBuckets; ++i) buckets[static_cast<std::size_t>(i)] +=
      other.buckets[static_cast<std::size_t>(i)];
  if (count == 0 || other.min < min) min = other.min;
  if (other.max > max) max = other.max;
  count += other.count;
  sum += other.sum;
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  for (std::size_t i = 0; i < counters_.size(); ++i) counters_[i] += other.counters_[i];
  for (std::size_t i = 0; i < gauges_.size(); ++i)
    if (other.gauges_[i] > gauges_[i]) gauges_[i] = other.gauges_[i];
  for (std::size_t i = 0; i < hists_.size(); ++i) hists_[i].merge(other.hists_[i]);
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  snap.samples.reserve(counters_.size() + gauges_.size() + hists_.size() * 4);
  for (std::size_t i = 0; i < counters_.size(); ++i)
    snap.samples.push_back({counter_name(static_cast<Counter>(i)), counters_[i]});
  for (std::size_t i = 0; i < gauges_.size(); ++i)
    snap.samples.push_back({gauge_name(static_cast<Gauge>(i)), gauges_[i]});
  for (std::size_t i = 0; i < hists_.size(); ++i) {
    const std::string base = hist_name(static_cast<Hist>(i));
    const Histogram& h = hists_[i];
    snap.samples.push_back({base + ".count", h.count});
    snap.samples.push_back({base + ".max", h.max});
    snap.samples.push_back({base + ".min", h.min});
    snap.samples.push_back({base + ".sum", h.sum});
  }
  std::sort(snap.samples.begin(), snap.samples.end(),
            [](const MetricSample& a, const MetricSample& b) { return a.name < b.name; });
  return snap;
}

std::uint64_t MetricsSnapshot::value(const std::string& name) const {
  for (const MetricSample& s : samples)
    if (s.name == name) return s.value;
  return 0;
}

std::string MetricsSnapshot::to_json(int indent) const {
  const std::string pad(static_cast<std::size_t>(indent < 0 ? 0 : indent), ' ');
  std::string out = "{\n";
  for (std::size_t i = 0; i < samples.size(); ++i) {
    out += pad + "\"" + samples[i].name + "\": " + std::to_string(samples[i].value);
    if (i + 1 < samples.size()) out += ",";
    out += "\n";
  }
  out += pad.substr(0, pad.size() >= 2 ? pad.size() - 2 : 0) + "}";
  return out;
}

}  // namespace rapid::obs
