// Runtime observability: one ObsContext per simulation run bundles the
// metrics registry (obs/metrics_registry.h), the binary trace ring
// (obs/trace.h) and the per-phase profile (obs/profile.h).
//
// Hot paths reach the context through a thread-local pointer installed by
// whoever owns the run (Simulation installs its context around every
// step), so instrumented code never threads an extra parameter through the
// router/contact call chain and never takes a lock: a counter bump is a TLS
// load, a branch, and an array increment. Runs execute one per thread (the
// sweep executor's cells), so per-run contexts are unsynchronized by
// construction and the runner aggregates them afterwards with
// MetricsRegistry::merge.
//
// Everything here is compiled out when the CMake option RAPID_OBS is OFF
// (RAPID_OBS_ENABLED == 0): the macros expand to nothing and the context
// scopes become empty structs, so the stripped hot path carries zero
// observability cost. The determinism contract holds in every mode:
// observability only watches — tracing or profiling a run never changes its
// figure output (enforced by tests and the CI obs job).
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <vector>

#include "obs/metrics_registry.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "util/types.h"

#ifndef RAPID_OBS_ENABLED
#define RAPID_OBS_ENABLED 1
#endif

namespace rapid::obs {

struct ObsConfig {
  // Wall-clock phase attribution (one steady_clock read per scope boundary).
  // Off by default: counters are always on, clocks are opt-in.
  bool profile = false;
  // Trace ring capacity in events; 0 disables tracing entirely.
  std::size_t trace_capacity = 0;
};

// Everything one run's instrumentation produced, packaged by
// ObsContext::report() (and carried on SimResult::obs).
struct ObsReport {
  MetricsSnapshot metrics;
  PhaseProfile profile;
  std::vector<TraceEvent> trace;  // chronological; empty unless traced
  std::uint64_t trace_total = 0;
  std::uint64_t trace_dropped = 0;
};

class ObsContext {
 public:
  explicit ObsContext(const ObsConfig& config = {})
      : trace(config.trace_capacity) {
    profile.enabled = config.profile;
  }

  ObsContext(const ObsContext&) = delete;
  ObsContext& operator=(const ObsContext&) = delete;

  MetricsRegistry metrics;
  TraceBuffer trace;
  PhaseProfile profile;

  // Scope state of the exclusive-time phase accounting (see obs/profile.h);
  // touched only by PhaseScope.
  static constexpr int kMaxPhaseDepth = 16;
  int phase_depth = 0;
  std::int8_t current_phase = -1;
  std::uint64_t last_mark = 0;
  std::array<std::int8_t, kMaxPhaseDepth> phase_stack{};

  ObsReport report() const {
    ObsReport r;
    // Trace occupancy folds into the snapshot here so the registry itself
    // never has to watch the ring.
    MetricsRegistry final_metrics = metrics;
    final_metrics.gauge_max(Gauge::kTraceEvents, trace.total());
    final_metrics.add(Counter::kTraceDropped, trace.dropped());
    r.metrics = final_metrics.snapshot();
    r.profile = profile;
    r.trace_total = trace.total();
    r.trace_dropped = trace.dropped();
    if (trace.enabled()) r.trace = trace.chronological();
    return r;
  }
};

inline std::uint64_t monotonic_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

#if RAPID_OBS_ENABLED

// The run installed on this thread, or null outside any instrumented run.
ObsContext* current();
void set_current(ObsContext* ctx);

// RAII install/restore of the thread-local context; nests (an inner scope
// restores the outer run on exit).
class ContextScope {
 public:
  explicit ContextScope(ObsContext* ctx);
  ~ContextScope();
  ContextScope(const ContextScope&) = delete;
  ContextScope& operator=(const ContextScope&) = delete;

 private:
  ObsContext* prev_;
};

// Exclusive-time phase scope: suspends the enclosing phase's clock for the
// duration. Inactive (a TLS load + branch) when no context is installed or
// profiling is off.
class PhaseScope {
 public:
  explicit PhaseScope(Phase p) {
    ObsContext* c = current();
    if (c == nullptr || !c->profile.enabled ||
        c->phase_depth >= ObsContext::kMaxPhaseDepth)
      return;
    ctx_ = c;
    const std::uint64_t now = monotonic_ns();
    if (c->current_phase >= 0)
      c->profile.ns[static_cast<std::size_t>(c->current_phase)] += now - c->last_mark;
    c->phase_stack[static_cast<std::size_t>(c->phase_depth++)] = c->current_phase;
    c->current_phase = static_cast<std::int8_t>(p);
    ++c->profile.calls[static_cast<std::size_t>(p)];
    c->last_mark = now;
  }
  ~PhaseScope() {
    if (ctx_ == nullptr) return;
    const std::uint64_t now = monotonic_ns();
    ctx_->profile.ns[static_cast<std::size_t>(ctx_->current_phase)] +=
        now - ctx_->last_mark;
    ctx_->current_phase = ctx_->phase_stack[static_cast<std::size_t>(--ctx_->phase_depth)];
    ctx_->last_mark = now;
  }
  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

 private:
  ObsContext* ctx_ = nullptr;
};

#define RAPID_OBS_CONCAT_INNER(a, b) a##b
#define RAPID_OBS_CONCAT(a, b) RAPID_OBS_CONCAT_INNER(a, b)

#define RAPID_OBS_ADD(counter, n)                                         \
  do {                                                                    \
    if (::rapid::obs::ObsContext* _obs_c = ::rapid::obs::current())       \
      _obs_c->metrics.add(::rapid::obs::Counter::counter,                 \
                          static_cast<std::uint64_t>(n));                 \
  } while (0)
#define RAPID_OBS_INC(counter) RAPID_OBS_ADD(counter, 1)
#define RAPID_OBS_GAUGE_MAX(gauge, v)                                     \
  do {                                                                    \
    if (::rapid::obs::ObsContext* _obs_c = ::rapid::obs::current())       \
      _obs_c->metrics.gauge_max(::rapid::obs::Gauge::gauge,               \
                                static_cast<std::uint64_t>(v));           \
  } while (0)
#define RAPID_OBS_HIST(hist, v)                                           \
  do {                                                                    \
    if (::rapid::obs::ObsContext* _obs_c = ::rapid::obs::current())       \
      _obs_c->metrics.observe(::rapid::obs::Hist::hist,                   \
                              static_cast<std::uint64_t>(v));             \
  } while (0)
#define RAPID_OBS_TRACE(kind, t, na, nb, pkt, val)                        \
  do {                                                                    \
    ::rapid::obs::ObsContext* _obs_c = ::rapid::obs::current();           \
    if (_obs_c != nullptr && _obs_c->trace.enabled())                     \
      _obs_c->trace.emit({(t), ::rapid::obs::TraceEventKind::kind, (na),  \
                          (nb), (pkt), (val)});                           \
  } while (0)
#define RAPID_OBS_PHASE(phase)                         \
  ::rapid::obs::PhaseScope RAPID_OBS_CONCAT(           \
      _rapid_obs_phase_, __LINE__)(::rapid::obs::Phase::phase)

#else  // !RAPID_OBS_ENABLED — everything strips to nothing.

inline ObsContext* current() { return nullptr; }
inline void set_current(ObsContext*) {}

class ContextScope {
 public:
  explicit ContextScope(ObsContext*) {}
};
class PhaseScope {
 public:
  explicit PhaseScope(Phase) {}
};

#define RAPID_OBS_ADD(counter, n) ((void)0)
#define RAPID_OBS_INC(counter) ((void)0)
#define RAPID_OBS_GAUGE_MAX(gauge, v) ((void)0)
#define RAPID_OBS_HIST(hist, v) ((void)0)
#define RAPID_OBS_TRACE(kind, t, na, nb, pkt, val) ((void)0)
#define RAPID_OBS_PHASE(phase) ((void)0)

#endif  // RAPID_OBS_ENABLED

}  // namespace rapid::obs
