// Reader half of the trace pipeline: parses the Chrome trace JSON written by
// obs/trace_export.h back into TraceEvents and reconstructs per-packet
// lifecycles from them.
//
// The parser is deliberately not a general JSON parser — it recovers events
// from the verbatim "args" objects the exporter embeds (each holds the full
// TraceEvent at full precision), which keeps emit -> export -> parse a
// lossless round trip (golden-tested). Entries without a well-formed args
// object are skipped, so hand-edited or foreign trace files degrade
// gracefully instead of failing.
//
// packet_lifecycle() filters one packet's story out of a trace and
// render_replication_tree() prints it as the copy tree the epidemic paths
// grew: origin at the root, one child per node that received a copy, with
// delivery / partial-transfer / drop annotations. tools/trace_query is a
// thin CLI over these two calls.
#pragma once

#include <string>
#include <vector>

#include "obs/trace.h"

namespace rapid::obs {

// Parses trace JSON produced by write_chrome_trace. Events come back in file
// order (chronological for our exporter). Unparseable entries are skipped.
std::vector<TraceEvent> read_chrome_trace(const std::string& json);

// One packet's slice of a trace.
struct PacketLifecycle {
  PacketId packet = kNoPacket;
  bool created = false;
  NodeId src = kNoNode;
  NodeId dst = kNoNode;
  Time create_time = 0;
  std::int64_t size = 0;
  bool delivered = false;
  Time deliver_time = 0;
  // Every event mentioning the packet, in trace order.
  std::vector<TraceEvent> events;
};

PacketLifecycle packet_lifecycle(const std::vector<TraceEvent>& events,
                                 PacketId packet);

// Renders the replication tree, e.g.
//   packet 3: 0 -> 4, 1024 bytes, created t=10
//   node 0 (origin)
//   +- node 2 (copy t=12.5)
//   |  +- node 4 (delivered t=20)
//   +- node 1 (copy t=15)
std::string render_replication_tree(const PacketLifecycle& life);

}  // namespace rapid::obs
