// Control-channel plumbing for RAPID (§4.2, §6.2.3, §6.2.6).
//
// Three modes:
//   kInBand      — the deployed protocol: metadata rides the transfer
//                  opportunity (delta-encoded, budget-capped) and is
//                  therefore delayed and possibly stale.
//   kLocalOnly   — the "rapid-local" ablation of Fig 14: nodes exchange
//                  metadata about only the packets in their own buffers
//                  (no relaying of third-party replica information).
//   kGlobalOracle— the instant global channel of §6.2.3 (hybrid DTN upper
//                  bound): replica locations, meeting rows and delivery
//                  acknowledgments are visible everywhere immediately and
//                  cost no in-band bandwidth.
#pragma once

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "util/types.h"

namespace rapid {

enum class ControlChannelMode { kInBand, kLocalOnly, kGlobalOracle };

const char* to_string(ControlChannelMode mode);

// Shared state implementing the instant global channel. One instance is
// shared by every RAPID router in a simulation.
class GlobalChannel {
 public:
  void add_holder(PacketId id, NodeId node);
  void remove_holder(PacketId id, NodeId node);
  void mark_delivered(PacketId id);

  bool is_delivered(PacketId id) const { return delivered_.count(id) != 0; }
  // Current true holder set (never stale).
  const std::vector<NodeId>& holders(PacketId id) const;

 private:
  std::unordered_map<PacketId, std::vector<NodeId>> holders_;
  std::unordered_set<PacketId> delivered_;
  static const std::vector<NodeId> kEmpty;
};

}  // namespace rapid
