// Control-channel plumbing for RAPID (§4.2, §6.2.3, §6.2.6).
//
// Three modes:
//   kInBand      — the deployed protocol: metadata rides the transfer
//                  opportunity (delta-encoded, budget-capped) and is
//                  therefore delayed and possibly stale.
//   kLocalOnly   — the "rapid-local" ablation of Fig 14: nodes exchange
//                  metadata about only the packets in their own buffers
//                  (no relaying of third-party replica information).
//   kGlobalOracle— the instant global channel of §6.2.3 (hybrid DTN upper
//                  bound): replica locations, meeting rows and delivery
//                  acknowledgments are visible everywhere immediately and
//                  cost no in-band bandwidth.
#pragma once

#include <cstdint>
#include <vector>

#include "util/span.h"
#include "util/types.h"

namespace rapid {

class BinReader;  // util/binio.h
class BinWriter;

enum class ControlChannelMode { kInBand, kLocalOnly, kGlobalOracle };

const char* to_string(ControlChannelMode mode);

// Shared state implementing the instant global channel. One instance is
// shared by every RAPID router in a simulation.
//
// Holder sets live in a flat per-packet slab (direct-indexed by the dense
// packet id). holders() returns a Span *by value* over the slab entry —
// never a reference to a shared static sentinel — so an empty result cannot
// alias a container that a later mutation repopulates. The span is valid
// until the next mutation of that packet's holder set.
class GlobalChannel {
 public:
  void add_holder(PacketId id, NodeId node);
  void remove_holder(PacketId id, NodeId node);
  void mark_delivered(PacketId id);

  bool is_delivered(PacketId id) const {
    return id >= 0 && static_cast<std::size_t>(id) < delivered_.size() &&
           delivered_[static_cast<std::size_t>(id)] != 0;
  }
  // Current true holder set (never stale), in insertion order.
  Span<NodeId> holders(PacketId id) const {
    if (id < 0 || static_cast<std::size_t>(id) >= holders_.size()) return {};
    const std::vector<NodeId>& v = holders_[static_cast<std::size_t>(id)];
    return Span<NodeId>(v.data(), v.size());
  }

  // Snapshot/restore: holder sets keep their insertion order (the global-
  // oracle rate sum iterates them). The owning RAPID routers share one
  // channel, so the snapshot writer serializes it once via interning.
  void save(BinWriter& out) const;
  void load(BinReader& in);

 private:
  std::vector<std::vector<NodeId>> holders_;  // slab: id -> current holders
  std::vector<std::uint8_t> delivered_;
};

}  // namespace rapid
