#include "core/control_channel.h"

#include <algorithm>

#include "util/slab.h"

namespace rapid {

const char* to_string(ControlChannelMode mode) {
  switch (mode) {
    case ControlChannelMode::kInBand: return "in-band";
    case ControlChannelMode::kLocalOnly: return "local-only";
    case ControlChannelMode::kGlobalOracle: return "global-oracle";
  }
  return "?";
}

void GlobalChannel::add_holder(PacketId id, NodeId node) {
  if (id < 0) return;
  auto& v = grow_slot(holders_, id);
  if (std::find(v.begin(), v.end(), node) == v.end()) v.push_back(node);
}

void GlobalChannel::remove_holder(PacketId id, NodeId node) {
  if (id < 0 || static_cast<std::size_t>(id) >= holders_.size()) return;
  auto& v = holders_[static_cast<std::size_t>(id)];
  // Order-preserving erase (the rate sum over holders is a float reduction,
  // so holder order is part of the observable behavior). The slab entry and
  // its capacity stay alive: spans handed out for this packet shrink but
  // never dangle into freed map nodes.
  v.erase(std::remove(v.begin(), v.end(), node), v.end());
}

void GlobalChannel::mark_delivered(PacketId id) {
  if (id < 0) return;
  grow_slot(delivered_, id, std::uint8_t{0}) = 1;
}

}  // namespace rapid
