#include "core/control_channel.h"

#include <algorithm>

#include "util/binio.h"
#include "util/slab.h"

namespace rapid {

const char* to_string(ControlChannelMode mode) {
  switch (mode) {
    case ControlChannelMode::kInBand: return "in-band";
    case ControlChannelMode::kLocalOnly: return "local-only";
    case ControlChannelMode::kGlobalOracle: return "global-oracle";
  }
  return "?";
}

void GlobalChannel::add_holder(PacketId id, NodeId node) {
  if (id < 0) return;
  auto& v = grow_slot(holders_, id);
  if (std::find(v.begin(), v.end(), node) == v.end()) v.push_back(node);
}

void GlobalChannel::remove_holder(PacketId id, NodeId node) {
  if (id < 0 || static_cast<std::size_t>(id) >= holders_.size()) return;
  auto& v = holders_[static_cast<std::size_t>(id)];
  // Order-preserving erase (the rate sum over holders is a float reduction,
  // so holder order is part of the observable behavior). The slab entry and
  // its capacity stay alive: spans handed out for this packet shrink but
  // never dangle into freed map nodes.
  v.erase(std::remove(v.begin(), v.end(), node), v.end());
}

void GlobalChannel::mark_delivered(PacketId id) {
  if (id < 0) return;
  grow_slot(delivered_, id, std::uint8_t{0}) = 1;
}

void GlobalChannel::save(BinWriter& out) const {
  out.tag("GCHN");
  out.u64(holders_.size());
  for (const std::vector<NodeId>& v : holders_) {
    out.u64(v.size());
    for (NodeId node : v) out.i64(node);
  }
  out.u64(delivered_.size());
  for (std::uint8_t flag : delivered_) out.u8(flag);
}

void GlobalChannel::load(BinReader& in) {
  in.expect_tag("GCHN");
  holders_.assign(in.u64(), {});
  for (std::vector<NodeId>& v : holders_) {
    v.resize(in.u64());
    for (NodeId& node : v) node = static_cast<NodeId>(in.i64());
  }
  delivered_.resize(in.u64());
  for (std::uint8_t& flag : delivered_) flag = in.u8();
}

}  // namespace rapid
