#include "core/control_channel.h"

#include <algorithm>

namespace rapid {

const std::vector<NodeId> GlobalChannel::kEmpty;

const char* to_string(ControlChannelMode mode) {
  switch (mode) {
    case ControlChannelMode::kInBand: return "in-band";
    case ControlChannelMode::kLocalOnly: return "local-only";
    case ControlChannelMode::kGlobalOracle: return "global-oracle";
  }
  return "?";
}

void GlobalChannel::add_holder(PacketId id, NodeId node) {
  auto& v = holders_[id];
  if (std::find(v.begin(), v.end(), node) == v.end()) v.push_back(node);
}

void GlobalChannel::remove_holder(PacketId id, NodeId node) {
  auto it = holders_.find(id);
  if (it == holders_.end()) return;
  auto& v = it->second;
  v.erase(std::remove(v.begin(), v.end(), node), v.end());
  if (v.empty()) holders_.erase(it);
}

void GlobalChannel::mark_delivered(PacketId id) { delivered_.insert(id); }

const std::vector<NodeId>& GlobalChannel::holders(PacketId id) const {
  auto it = holders_.find(id);
  return it == holders_.end() ? kEmpty : it->second;
}

}  // namespace rapid
