// The RAPID router: Protocol rapid(X, Y) of §3.4 with the inference
// algorithm of §4 and the control channel of §4.2.
//
// At a transfer opportunity the router:
//   1. exchanges metadata (acks, meeting-time rows, replica lists with
//      direct-delivery estimates, average opportunity sizes) under the
//      metadata budget;
//   2. delivers packets destined to the peer, highest utility first;
//   3. replicates packets in decreasing marginal utility per byte
//      delta(U_i) / s_i, skipping packets the peer already holds;
//   4. stops when the opportunity is exhausted.
//
// Expected delays come from Estimate Delay (core/delay_estimator.h) applied
// to the router's (possibly stale) metadata view; meeting times come from
// the <= 3-hop meeting matrix (core/meeting_matrix.h).
//
// The per-packet inference quantities — the direct-delivery estimate d_j of
// Algorithm 2 and the replica-rate sum feeding Eqs. 1-3 — are served through
// an incremental utility engine (core/utility_cache.h): values are memoized
// keyed by the generations of the inputs that produced them (destination
// queue, opportunity averages, meeting matrix, per-packet metadata record),
// so a contact re-evaluates only what actually changed instead of walking
// every queue, replica set and matrix row from scratch. RapidConfig::
// use_utility_cache disables the memoization (every evaluation recomputes);
// the two paths are bit-identical by construction and locked in by the
// dual-path figure tests.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "core/control_channel.h"
#include "core/meeting_matrix.h"
#include "core/metadata.h"
#include "core/utility.h"
#include "core/utility_cache.h"
#include "dtn/router.h"
#include "stats/moments.h"

namespace rapid {

struct RapidConfig {
  RoutingMetric metric = RoutingMetric::kAvgDelay;
  ControlChannelMode control = ControlChannelMode::kInBand;
  int max_hops = 3;  // paper restricts the meeting-time estimate to h = 3
  UtilityParams utility;
  // Reserved scale for "no information yet": destinations unreachable within
  // h hops contribute zero marginal utility (§4.1.2 sets their expected
  // meeting time to infinity); such packets are replicated last, with spare
  // bandwidth only (work conservation). This knob only anchors reporting of
  // capped delays in diagnostics.
  double prior_meeting_time = 6.0 * kSecondsPerHour;
  // Bound on the per-contact replica-estimate/record exchange (priorities 4
  // and 5 of the control channel) as a fraction of the metadata budget,
  // freshest records first. Keeps the control channel at the few-percent
  // overhead the paper reports (Table 3, Fig 9) instead of letting the
  // relay grow with the total packet population.
  double relay_budget_fraction = 0.05;
  // Prior for the expected transfer-opportunity size before any is observed.
  Bytes prior_opportunity_bytes = 100_KB;
  // Memoize per-packet delay estimates and replica-rate sums with
  // generation-keyed dirty tracking (core/utility_cache.h). Off = recompute
  // eagerly on every evaluation; output is bit-identical either way.
  bool use_utility_cache = true;
};

// Protocol rapid(X, Y): a Router that treats the transfer opportunity as a
// resource-allocation problem. It orders candidate replications by marginal
// utility per byte delta(U_i)/s_i, where U_i is the configured metric's
// utility — Eq. 1 (average delay, U_i = -(T(i) + A(i))), Eq. 2 (missed
// deadlines, U_i = P(a(i) < L(i) - T(i))) or Eq. 3 (maximum delay) — and
// evaluates those utilities from its local, possibly stale, metadata view.
// Contract: the router owns nothing outside its own state (buffers, queues,
// matrix, metadata, cache) and touches peers only through the PeerView it is
// handed during a contact; all inference methods are const and
// side-effect-free except for memo fills in the mutable utility cache.
class RapidRouter : public Router {
 public:
  RapidRouter(NodeId self, Bytes buffer_capacity, const SimContext* ctx,
              const RapidConfig& config, std::shared_ptr<GlobalChannel> global = nullptr);

  const RapidConfig& config() const { return config_; }
  const MeetingMatrix& matrix() const { return matrix_; }
  const MetadataStore& metadata() const { return meta_; }
  // The incremental utility engine (probe counters, flat queues). Exposed
  // read-only for tests and benches.
  const UtilityCache& utility_cache() const { return cache_; }

  // --- Router interface -----------------------------------------------------
  bool on_generate(const Packet& p) override;
  void observe_opportunity(Bytes capacity, NodeId peer, Time now) override;
  // Batched-dispatch pre-pass: sizes the per-contact plan scratch (direct,
  // replication and fallback orderings) for the whole span once, so the
  // batch's contacts never grow them mid-plan. Pure reservation — the SoA
  // queue walks and utility evaluations are unchanged, keeping batched runs
  // bit-identical to per-event ones.
  void on_contact_batch(const ContactBatch& batch) override;
  Bytes contact_begin(const PeerView& peer, Time now, Bytes meta_budget) override;
  std::optional<PacketId> next_transfer(const ContactContext& contact,
                                        const PeerView& peer) override;
  void on_transfer_success(const Packet& p, const PeerView& peer, ReceiveOutcome outcome,
                           Time now) override;
  void contact_end(const PeerView& peer, Time now) override;
  PacketId choose_drop_victim(const Packet& incoming, Time now) override;
  // Pushes the utility-cache probe counters (hits, recomputes, forgets,
  // tracked-packet high-water mark) into the run's registry.
  void flush_obs(obs::ObsContext& out) const override;

  // The instant-global-control-channel mode reaches every other router
  // (oracle walks, shared GlobalChannel) on each event, so it cannot be
  // partitioned; the sharded engine runs it serially.
  bool shard_safe() const override {
    return config_.control != ControlChannelMode::kGlobalOracle;
  }

  // Snapshot/restore: meeting matrix (with shared row versions interned),
  // metadata ledger, sync stamps, opportunity averages and — in global-oracle
  // mode — the shared channel, serialized once by whichever router saves
  // first. The utility cache restores cold and refills from identical inputs
  // (the cached and eager paths are bit-identical by contract).
  void save_state(BinWriter& out) override;
  void load_state(BinReader& in) override;

  // --- Inference (exposed for tests and for peers during a contact) ---------
  // This node's own direct-delivery delay estimate for a buffered packet.
  double self_direct_delay(const Packet& p) const;
  // Direct-delivery delay this node would have for `p` if it were
  // replicated here now (position it would take in the destination queue).
  double direct_delay_if_stored(const Packet& p) const;
  // Believed rate sum over replicas (self fresh + metadata view / oracle).
  double replica_rate(const Packet& p) const;
  // D(i) = T(i) + A(i) under the current view.
  double expected_total_delay_of(const Packet& p, Time now) const;
  // Expected inter-meeting time with `node` (<= h hops, prior-substituted).
  double effective_meeting_time(NodeId node) const;
  Bytes expected_opportunity(NodeId peer) const;
  // The configured metric's utility of `p` under the current view — the
  // mid-stream query surface of the service engine (src/service).
  double utility_now(const Packet& p, Time now) const { return utility_of(p, now); }

 protected:
  void on_stored(const Packet& p, NodeId from, std::int64_t aux, Time now) override;
  void on_dropped(const Packet& p, Time now) override;
  void on_acked(const Packet& p, Time now) override;
  void on_delivered_here(const Packet& p, Time now) override;

 private:
  struct Candidate {
    PacketId id = kNoPacket;
    double score = 0;  // delta(U)/s, or D(i) for the max-delay metric
  };

  RapidConfig config_;
  MeetingMatrix matrix_;
  MetadataStore meta_;
  std::shared_ptr<GlobalChannel> global_;
  std::vector<Time> last_sync_;  // per peer; -inf = never synced
  MovingAverage avg_opportunity_;                  // all peers
  std::vector<MovingAverage> per_peer_opportunity_;  // flat, indexed by peer

  // Incremental utility engine: owns the flat per-destination queues
  // ((created, id, size) ascending by age rank — front is oldest, i.e.
  // delivered first, §4.1) and the generation-keyed memo of per-packet
  // delay/rate estimates. Mutable because cache fills happen inside const
  // inference queries.
  mutable UtilityCache cache_;

  // Per-contact cached orderings (the candidate set is stable within a
  // contact; see DESIGN.md on work conservation). Validity is tracked by the
  // base Router's plan-cache helpers, keyed by the peer the plan was built
  // for, so interleaved concurrent sessions rebuild instead of reusing
  // another peer's ordering.
  std::vector<PacketId> direct_order_;
  std::size_t direct_cursor_ = 0;
  std::vector<Candidate> replication_order_;
  std::size_t replication_cursor_ = 0;
  std::vector<Candidate> fallback_scratch_;  // reused across plan builds

  void queue_insert(const Packet& p);
  void queue_erase(const Packet& p);

  // Shared body of self_direct_delay / direct_delay_if_stored: Algorithm 2's
  // d_j for the queue position p holds (or would take) here, memoized per
  // packet when the utility cache is enabled.
  double direct_delay(const Packet& p) const;
  // Same estimate with the inputs already in hand — the bulk own-buffer pass
  // hoists the per-destination terms and accumulates the byte prefix while
  // walking a queue, instead of re-deriving all three per packet.
  double direct_delay_at(const Packet& p, const UtilityCache::DelayInputs& inputs) const;
  UtilityCache::DelayInputs delay_inputs(const Packet& p) const;

  Bytes exchange_metadata(RapidRouter& peer, Time now, Bytes budget);
  void build_contact_plan(const ContactContext& contact, const PeerView& peer);
  double marginal_for(const Packet& p, RapidRouter* rapid_peer, const PeerView& peer,
                      Time now) const;
  double utility_of(const Packet& p, Time now) const;
  void broadcast_own_row(Time now);
};

// Convenience factory for the experiment harness.
RouterFactory make_rapid_factory(const RapidConfig& config, Bytes buffer_capacity,
                                 std::shared_ptr<GlobalChannel> global = nullptr);

}  // namespace rapid
