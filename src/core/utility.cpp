#include "core/utility.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/delay_estimator.h"

namespace rapid {

std::string to_string(RoutingMetric metric) {
  switch (metric) {
    case RoutingMetric::kAvgDelay: return "avg-delay";
    case RoutingMetric::kMissedDeadlines: return "missed-deadlines";
    case RoutingMetric::kMaxDelay: return "max-delay";
  }
  return "?";
}

double capped_expected_delay(double rate, const UtilityParams& params) {
  const double a = expected_delay_from_rate(rate);
  return std::min(a, params.delay_cap);
}

double expected_total_delay(double age, double rate, const UtilityParams& params) {
  return age + capped_expected_delay(rate, params);
}

double marginal_utility(RoutingMetric metric, double rate_before, double d_new,
                        double age, double remaining_life, const UtilityParams& params) {
  (void)age;
  if (d_new == kTimeInfinity || d_new <= 0) return 0;  // replica adds no delivery path
  const double rate_after = rate_before + 1.0 / d_new;
  switch (metric) {
    case RoutingMetric::kAvgDelay:
    case RoutingMetric::kMaxDelay: {
      // Reduction of the (capped) expected delay. T(i) cancels.
      return capped_expected_delay(rate_before, params) -
             capped_expected_delay(rate_after, params);
    }
    case RoutingMetric::kMissedDeadlines: {
      if (remaining_life <= 0) return 0;  // Eq. 2: missed deadline => utility 0
      if (remaining_life == kTimeInfinity) {
        // No deadline pressure: any extra path is (equally) a certain win;
        // fall back to delay reduction so ordering stays informative.
        return capped_expected_delay(rate_before, params) -
               capped_expected_delay(rate_after, params);
      }
      // P_after - P_before computed as a survival difference so that the
      // gain stays positive even when both probabilities round to 1.
      return std::exp(-rate_before * remaining_life) -
             std::exp(-rate_after * remaining_life);
    }
  }
  throw std::logic_error("marginal_utility: unknown metric");
}

double packet_utility(RoutingMetric metric, double rate, double age,
                      double remaining_life, const UtilityParams& params) {
  switch (metric) {
    case RoutingMetric::kAvgDelay:
    case RoutingMetric::kMaxDelay:
      // U = -(T + A); for the max-delay metric Eq. 3 further masks all but
      // the max-D packet, which the router's selection order implements.
      return -expected_total_delay(age, rate, params);
    case RoutingMetric::kMissedDeadlines:
      if (remaining_life <= 0) return 0;
      return delivery_probability_from_rate(rate, remaining_life);
  }
  throw std::logic_error("packet_utility: unknown metric");
}

}  // namespace rapid
