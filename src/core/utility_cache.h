// Incremental utility engine for the RAPID hot path.
//
// RAPID's control loop (§3.4 / §4) evaluates, at every transfer opportunity,
// the delay estimate of Algorithm 2 and the marginal utilities of Eqs. 1-3
// for every buffered packet. Computed eagerly that walk is the dominant cost
// as node and packet counts grow: the expensive inputs — the queue position
// term b_j(i) of Algorithm 2, the meeting-time estimate E[M_XZ] (§4.1.2) and
// the replica-rate sum over the metadata view (§4.2) — change far more
// slowly than they are read.
//
// UtilityCache makes those reads incremental:
//
//  * Per-destination packet queues live in flat contiguous storage (a
//    direct-indexed table of packed, age-sorted entry vectors) instead of a
//    node-keyed map of vectors, with per-queue *generation* counters and an
//    incrementally maintained size histogram so the prefix-bytes term of
//    Algorithm 2 is O(log n) for the uniform-size workloads of Table 4.
//  * Per-packet direct-delay estimates (d_j of Algorithm 2) and replica-rate
//    sums (sum_j 1/d_j of Eqs. 7-9) are memoized in a packed entry vector
//    reached through a direct slot-by-PacketId index, each value keyed by
//    the inputs that produced it: the queue-prefix bytes, opportunity
//    average and meeting-time estimate by value (cheap to read back), the
//    per-packet metadata record by generation (MetadataStore::generation),
//    plus buffer membership.
//
// Invalidation is dirty-tracking by construction: a metadata update, a
// replica change, a queue edit or a meeting-time move makes exactly the
// packets whose cached values referenced that input compare stale at their
// next lookup; everything else keeps hitting — a contact that perturbs a
// node's matrix without moving the estimate toward some destination
// invalidates none of that destination's packets. A stale value is
// recomputed by the same code path the eager engine runs, from identical
// inputs, so cached and eager routers produce bit-identical figure output
// (locked in by tests/runner_test.cpp's dual-path figure tests).
//
// Probe counters (UtilityCacheStats) count hits and recomputations per
// router and, aggregated, per process — the invalidation-edge tests and the
// bench_micro cache benchmarks read them.
#pragma once

#include <cstdint>
#include <vector>

#include "util/types.h"

namespace rapid {

// Hit/recompute probe counters. "Recompute" counts every evaluation of the
// underlying estimator: an eager (cache-disabled) router counts one per
// call, a caching router one per miss, so the ratio of the two is the
// work-saved factor reported by bench_micro.
struct UtilityCacheStats {
  std::uint64_t delay_hits = 0;
  std::uint64_t delay_recomputes = 0;
  std::uint64_t rate_hits = 0;
  std::uint64_t rate_recomputes = 0;
  std::uint64_t forgets = 0;  // entries dropped via forget() (acked packets)

  std::uint64_t recomputes() const { return delay_recomputes + rate_recomputes; }
  std::uint64_t lookups() const {
    return delay_hits + delay_recomputes + rate_hits + rate_recomputes;
  }
};

// Process-wide aggregate of every UtilityCache destroyed so far (each cache
// flushes its counters on destruction). Lets benches measure whole-simulation
// recomputation counts after the routers are gone.
UtilityCacheStats utility_cache_global_stats();
void reset_utility_cache_global_stats();

// The memo itself. Contract: direct_delay()/rate() return exactly what their
// compute() callback would return for the given inputs — a hit is only ever
// served when every recorded input compares equal to the caller's, so a
// caching router is bit-identical to an eager one (the values feed Eqs. 1-3
// unchanged). The cache owns the per-destination queues it indexes; callers
// own the generation discipline for the inputs they pass.
class UtilityCache {
 public:
  // One buffered (or hypothetically stored) packet in a destination queue,
  // ordered by age rank: oldest first, ties broken by id (§4.1 delivers the
  // oldest packet for a destination first).
  struct QueueEntry {
    Time created = 0;
    PacketId id = kNoPacket;
    Bytes size = 0;
    bool operator<(const QueueEntry& o) const {
      return created != o.created ? created < o.created : id < o.id;
    }
  };

  // The inputs a direct-delay estimate is a pure function of (Algorithm 2):
  // the bytes queued ahead b_j(i), the expected opportunity size B_j, and
  // the expected meeting time E[M]. All three are cheap to read back (the
  // flat queue answers the prefix in O(log n), the matrix memoizes its
  // h-hop rows), so entries are keyed by the *values* — a contact that
  // bumps a generation without actually moving the estimate for this
  // destination invalidates nothing. Exact double comparison is the point:
  // the value either moved or it did not (NaN never occurs; infinities
  // compare equal to themselves).
  struct DelayInputs {
    Bytes bytes_ahead = 0;
    Bytes opportunity = 0;
    Time meeting_time = 0;
    bool operator==(const DelayInputs& o) const {
      return bytes_ahead == o.bytes_ahead && opportunity == o.opportunity &&
             meeting_time == o.meeting_time;
    }
  };

  // A replica-rate sum additionally depends on the packet's metadata record
  // — compared by generation (MetadataStore::generation), since comparing
  // the whole replica list would cost as much as resumming it — and on
  // whether this node currently holds a copy (the fresh self term).
  struct RateInputs {
    DelayInputs delay;
    std::uint64_t metadata_gen = 0;
    bool in_buffer = false;
    bool operator==(const RateInputs& o) const {
      return delay == o.delay && metadata_gen == o.metadata_gen && in_buffer == o.in_buffer;
    }
  };

  explicit UtilityCache(int num_nodes);
  ~UtilityCache();  // flushes stats into the process-wide aggregate

  UtilityCache(const UtilityCache&) = delete;
  UtilityCache& operator=(const UtilityCache&) = delete;

  // --- flat destination queues ----------------------------------------------

  void queue_insert(NodeId dst, const QueueEntry& e);
  // Erases the entry with e's (created, id) key; no-op if absent.
  void queue_erase(NodeId dst, const QueueEntry& e);
  const std::vector<QueueEntry>& queue(NodeId dst) const {
    return queues_[static_cast<std::size_t>(dst)].entries;
  }
  // Bytes queued ahead of e (the b_j(i) term of Algorithm 2): the byte sum of
  // all strictly older entries. O(log n) when the queue holds one distinct
  // packet size (the maintained histogram), O(position) otherwise.
  Bytes queue_bytes_before(NodeId dst, const QueueEntry& e) const;
  std::uint64_t queue_generation(NodeId dst) const {
    return queues_[static_cast<std::size_t>(dst)].generation;
  }
  // Non-empty queues in ascending destination order (deterministic, unlike
  // the node-keyed hash map this storage replaced). fn returns false to stop
  // early (e.g. when a metadata budget is exhausted). Iterates the maintained
  // non-empty index, not all n slots — a contact pays for the destinations it
  // actually buffers, not the fleet size.
  template <typename Fn>
  void for_each_queue(Fn&& fn) const {
    for (const NodeId dst : nonempty_)
      if (!fn(dst, queues_[static_cast<std::size_t>(dst)].entries)) return;
  }

  // --- memoized per-packet estimates ----------------------------------------
  // compute() runs only when the entry is absent or its recorded inputs
  // differ (the entry is dirty); its result is then stored under `inputs`.
  // compute() may itself use the cache (a rate recompute reads the cached
  // self delay); entry references are re-acquired after it runs because an
  // insertion can grow the packed entry vector.

  template <typename Compute>
  double direct_delay(PacketId id, const DelayInputs& inputs, Compute&& compute) {
    if (const Entry* e = find_entry(id);
        e != nullptr && e->delay_valid && e->inputs == inputs) {
      ++stats_.delay_hits;
      return e->delay;
    }
    const double value = compute();
    ++stats_.delay_recomputes;
    Entry& e = entry_for(id);
    // The entry shares one input key between both cached values (a cache
    // line per packet); moving it invalidates the sibling value, which was
    // computed under the old state.
    if (!(e.inputs == inputs)) e.rate_valid = false;
    e.inputs = inputs;
    e.delay = value;
    e.delay_valid = true;
    return value;
  }

  template <typename Compute>
  double rate(PacketId id, const RateInputs& inputs, Compute&& compute) {
    if (const Entry* e = find_entry(id);
        e != nullptr && e->rate_valid && e->inputs == inputs.delay &&
        e->metadata_gen == inputs.metadata_gen && e->rate_in_buffer == inputs.in_buffer) {
      ++stats_.rate_hits;
      return e->rate;
    }
    const double value = compute();  // typically refreshes the delay in place
    ++stats_.rate_recomputes;
    Entry& e = entry_for(id);
    if (!(e.inputs == inputs.delay)) e.delay_valid = false;
    e.inputs = inputs.delay;
    e.rate = value;
    e.metadata_gen = inputs.metadata_gen;
    e.rate_in_buffer = inputs.in_buffer;
    e.rate_valid = true;
    return value;
  }

  // Drop the packet's cached values entirely (it was acknowledged: the
  // router will never ask about it again).
  void forget(PacketId id);

  // Eager-mode probes: a cache-disabled router reports every evaluation here
  // so eager and cached runs expose comparable recompute counts.
  void note_eager_delay() { ++stats_.delay_recomputes; }
  void note_eager_rate() { ++stats_.rate_recomputes; }

  const UtilityCacheStats& stats() const { return stats_; }
  std::size_t tracked_packets() const { return entries_.size(); }

 private:
  struct DestQueue {
    std::vector<QueueEntry> entries;  // sorted by (created, id)
    std::uint64_t generation = 0;
    // Histogram of distinct packet sizes present; one bucket in the uniform
    // case, which enables the O(log n) prefix-bytes fast path.
    std::vector<std::pair<Bytes, std::uint32_t>> size_counts;
    Bytes total_bytes = 0;
  };

  // One packet's memo, sized to a cache line: both values share one input
  // key (they are virtually always refreshed together — a rate recompute
  // refreshes the delay it embeds), with the rate's extra key fields beside
  // it. Moving the shared key invalidates whichever sibling value was not
  // part of the store.
  struct Entry {
    PacketId id = kNoPacket;
    double delay = 0;
    double rate = 0;
    DelayInputs inputs;
    std::uint64_t metadata_gen = 0;
    bool delay_valid = false;
    bool rate_valid = false;
    bool rate_in_buffer = false;
  };

  // Direct index from the dense PacketId space to a slot in the packed
  // entry vector: one flat load per lookup, no probing, no tombstones
  // (replaced the open-addressing index this cache started with).
  static constexpr std::int32_t kEmptySlot = -1;

  const Entry* find_entry(PacketId id) const {
    if (id < 0 || static_cast<std::size_t>(id) >= index_.size()) return nullptr;
    const std::int32_t slot = index_[static_cast<std::size_t>(id)];
    return slot >= 0 ? &entries_[static_cast<std::size_t>(slot)] : nullptr;
  }
  Entry& entry_for(PacketId id);  // find-or-insert; may grow entries_

  std::vector<DestQueue> queues_;
  std::vector<NodeId> nonempty_;     // dsts with entries, sorted ascending
  std::vector<Entry> entries_;       // packed; order is unspecified
  std::vector<std::int32_t> index_;  // PacketId -> entry slot, -1 = absent
  UtilityCacheStats stats_;
};

}  // namespace rapid
