#include "core/metadata.h"

#include <algorithm>
#include <stdexcept>

#include "util/binio.h"
#include "util/slab.h"

namespace rapid {

const std::vector<ReplicaEstimate> MetadataStore::kEmpty;

PacketMetadata& MetadataStore::materialize(PacketId id) {
  if (id < 0) throw std::invalid_argument("MetadataStore: negative packet id");
  std::int32_t& pos = grow_slot(pos_, id, std::int32_t{-1});
  if (pos < 0) {
    pos = static_cast<std::int32_t>(occupied_.size());
    occupied_.push_back(id);
    records_.emplace_back();
  }
  return records_[static_cast<std::size_t>(pos)];
}

bool MetadataStore::update_replica(PacketId id, const ReplicaEstimate& estimate) {
  PacketMetadata& meta = materialize(id);
  for (ReplicaEstimate& existing : meta.replicas) {
    if (existing.holder == estimate.holder) {
      if (estimate.stamp <= existing.stamp) return false;
      existing = estimate;
      meta.last_changed = std::max(meta.last_changed, estimate.stamp);
      meta.generation = ++next_generation_;
      return true;
    }
  }
  meta.replicas.push_back(estimate);
  meta.last_changed = std::max(meta.last_changed, estimate.stamp);
  meta.generation = ++next_generation_;
  return true;
}

bool MetadataStore::remove_replica(PacketId id, NodeId holder, Time stamp) {
  if (!knows(id)) return false;
  PacketMetadata& meta = records_[record_index(id)];
  auto& replicas = meta.replicas;
  for (std::size_t i = 0; i < replicas.size(); ++i) {
    if (replicas[i].holder == holder) {
      if (stamp <= replicas[i].stamp) return false;  // we have fresher info
      replicas.erase(replicas.begin() + static_cast<std::ptrdiff_t>(i));
      meta.last_changed = std::max(meta.last_changed, stamp);
      meta.generation = ++next_generation_;
      return true;
    }
  }
  return false;
}

void MetadataStore::forget_packet(PacketId id) {
  if (!knows(id)) return;
  const auto idx = static_cast<std::size_t>(id);
  const auto at = static_cast<std::size_t>(pos_[idx]);
  const std::size_t last = occupied_.size() - 1;
  if (at != last) {
    occupied_[at] = occupied_[last];
    records_[at] = std::move(records_[last]);
    pos_[static_cast<std::size_t>(occupied_[at])] = static_cast<std::int32_t>(at);
  }
  occupied_.pop_back();
  records_.pop_back();
  pos_[idx] = -1;
}

void MetadataStore::changed_since(
    Time since, std::vector<std::pair<PacketId, const PacketMetadata*>>& out) const {
  out.clear();
  for (std::size_t i = 0; i < occupied_.size(); ++i) {
    if (records_[i].last_changed > since) out.emplace_back(occupied_[i], &records_[i]);
  }
}

std::vector<std::pair<PacketId, const PacketMetadata*>> MetadataStore::changed_since(
    Time since) const {
  std::vector<std::pair<PacketId, const PacketMetadata*>> out;
  changed_since(since, out);
  return out;
}

Bytes MetadataStore::record_bytes(const PacketMetadata& meta) {
  return kPacketRecordHeaderBytes +
         kReplicaEntryBytes * static_cast<Bytes>(meta.replicas.size());
}

void MetadataStore::save(BinWriter& out) const {
  out.tag("META");
  out.u64(next_generation_);
  out.u64(occupied_.size());
  for (std::size_t i = 0; i < occupied_.size(); ++i) {
    const PacketMetadata& meta = records_[i];
    out.i64(occupied_[i]);
    out.f64(meta.last_changed);
    out.u64(meta.generation);
    out.u64(meta.replicas.size());
    for (const ReplicaEstimate& r : meta.replicas) {
      out.i64(r.holder);
      out.f64(r.direct_delay);
      out.f64(r.stamp);
    }
  }
}

void MetadataStore::load(BinReader& in) {
  in.expect_tag("META");
  next_generation_ = in.u64();
  const std::uint64_t count = in.u64();
  records_.clear();
  occupied_.clear();
  records_.reserve(count);
  occupied_.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    const PacketId id = static_cast<PacketId>(in.i64());
    if (id < 0) BinReader::fail("negative packet id in metadata record");
    PacketMetadata meta;
    meta.last_changed = in.f64();
    meta.generation = in.u64();
    const std::uint64_t replicas = in.u64();
    meta.replicas.reserve(replicas);
    for (std::uint64_t j = 0; j < replicas; ++j) {
      ReplicaEstimate r;
      r.holder = static_cast<NodeId>(in.i64());
      r.direct_delay = in.f64();
      r.stamp = in.f64();
      meta.replicas.push_back(r);
    }
    grow_slot(pos_, id, std::int32_t{-1}) = static_cast<std::int32_t>(occupied_.size());
    occupied_.push_back(id);
    records_.push_back(std::move(meta));
  }
}

}  // namespace rapid
