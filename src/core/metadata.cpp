#include "core/metadata.h"

#include <algorithm>

namespace rapid {

const std::vector<ReplicaEstimate> MetadataStore::kEmpty;

bool MetadataStore::update_replica(PacketId id, const ReplicaEstimate& estimate) {
  PacketMetadata& meta = by_packet_[id];
  for (ReplicaEstimate& existing : meta.replicas) {
    if (existing.holder == estimate.holder) {
      if (estimate.stamp <= existing.stamp) return false;
      existing = estimate;
      meta.last_changed = std::max(meta.last_changed, estimate.stamp);
      meta.generation = ++next_generation_;
      return true;
    }
  }
  meta.replicas.push_back(estimate);
  meta.last_changed = std::max(meta.last_changed, estimate.stamp);
  meta.generation = ++next_generation_;
  return true;
}

bool MetadataStore::remove_replica(PacketId id, NodeId holder, Time stamp) {
  auto it = by_packet_.find(id);
  if (it == by_packet_.end()) return false;
  auto& replicas = it->second.replicas;
  for (std::size_t i = 0; i < replicas.size(); ++i) {
    if (replicas[i].holder == holder) {
      if (stamp <= replicas[i].stamp) return false;  // we have fresher info
      replicas.erase(replicas.begin() + static_cast<std::ptrdiff_t>(i));
      it->second.last_changed = std::max(it->second.last_changed, stamp);
      it->second.generation = ++next_generation_;
      return true;
    }
  }
  return false;
}

void MetadataStore::forget_packet(PacketId id) { by_packet_.erase(id); }

std::uint64_t MetadataStore::generation(PacketId id) const {
  auto it = by_packet_.find(id);
  return it == by_packet_.end() ? 0 : it->second.generation;
}

const PacketMetadata* MetadataStore::find(PacketId id) const {
  auto it = by_packet_.find(id);
  return it == by_packet_.end() ? nullptr : &it->second;
}

const std::vector<ReplicaEstimate>& MetadataStore::replicas(PacketId id) const {
  auto it = by_packet_.find(id);
  return it == by_packet_.end() ? kEmpty : it->second.replicas;
}

std::vector<std::pair<PacketId, const PacketMetadata*>> MetadataStore::changed_since(
    Time since) const {
  std::vector<std::pair<PacketId, const PacketMetadata*>> out;
  for (const auto& [id, meta] : by_packet_) {
    if (meta.last_changed > since) out.emplace_back(id, &meta);
  }
  return out;
}

Bytes MetadataStore::record_bytes(const PacketMetadata& meta) {
  return kPacketRecordHeaderBytes +
         kReplicaEntryBytes * static_cast<Bytes>(meta.replicas.size());
}

}  // namespace rapid
