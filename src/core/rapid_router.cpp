#include "core/rapid_router.h"

#include <algorithm>
#include <cmath>

#include "core/delay_estimator.h"
#include "obs/obs.h"
#include "util/binio.h"
#include "util/slab.h"

namespace rapid {

RapidRouter::RapidRouter(NodeId self, Bytes buffer_capacity, const SimContext* ctx,
                         const RapidConfig& config, std::shared_ptr<GlobalChannel> global)
    : Router(self, buffer_capacity, ctx),
      config_(config),
      matrix_(self, ctx->num_nodes, config.max_hops),
      global_(std::move(global)),
      last_sync_(static_cast<std::size_t>(ctx->num_nodes), -kTimeInfinity),
      per_peer_opportunity_(static_cast<std::size_t>(ctx->num_nodes)),
      cache_(ctx->num_nodes) {
  if (config_.control == ControlChannelMode::kGlobalOracle && global_ == nullptr)
    throw std::invalid_argument("RapidRouter: global-oracle mode needs a GlobalChannel");
  // The workload pool is fully generated before the simulation starts, so
  // the per-packet slabs can be sized once instead of growing in churn.
  if (ctx->pool != nullptr) meta_.reserve_packets(ctx->pool->size());
}

// --- queue maintenance -------------------------------------------------------

void RapidRouter::queue_insert(const Packet& p) {
  cache_.queue_insert(p.dst, UtilityCache::QueueEntry{p.created, p.id, p.size});
}

void RapidRouter::queue_erase(const Packet& p) {
  cache_.queue_erase(p.dst, UtilityCache::QueueEntry{p.created, p.id, p.size});
}

// --- inference ----------------------------------------------------------------

double RapidRouter::effective_meeting_time(NodeId node) const {
  if (node == self()) return 0;
  const Time e = matrix_.expected_meeting_time(self(), node);
  if (e == kTimeInfinity) return kTimeInfinity;  // unreachable within h hops
  return std::max(e, 1.0);
}

Bytes RapidRouter::expected_opportunity(NodeId peer) const {
  const auto idx = static_cast<std::size_t>(peer);
  if (idx < per_peer_opportunity_.size() && !per_peer_opportunity_[idx].empty())
    return std::max<Bytes>(1, static_cast<Bytes>(per_peer_opportunity_[idx].value()));
  if (!avg_opportunity_.empty())
    return std::max<Bytes>(1, static_cast<Bytes>(avg_opportunity_.value()));
  return config_.prior_opportunity_bytes;
}

UtilityCache::DelayInputs RapidRouter::delay_inputs(const Packet& p) const {
  // The three inputs of Algorithm 2, read back cheaply: queue prefix in
  // O(log n) from the flat storage, opportunity average and memoized h-hop
  // meeting time in O(1).
  return UtilityCache::DelayInputs{
      cache_.queue_bytes_before(p.dst, UtilityCache::QueueEntry{p.created, p.id, p.size}),
      expected_opportunity(p.dst), effective_meeting_time(p.dst)};
}

double RapidRouter::direct_delay(const Packet& p) const {
  // Algorithm 2: position the packet holds (or would take) in this node's
  // destination queue — insertion by age keeps the delivered-oldest-first
  // order, so the computation is identical whether or not p is stored here.
  return direct_delay_at(p, delay_inputs(p));
}

double RapidRouter::direct_delay_at(const Packet& p,
                                    const UtilityCache::DelayInputs& inputs) const {
  const auto compute = [&] {
    const std::size_t n = meetings_needed(inputs.bytes_ahead, p.size, inputs.opportunity);
    return direct_delivery_delay(n, inputs.meeting_time);
  };
  if (!config_.use_utility_cache) {
    cache_.note_eager_delay();
    return compute();
  }
  return cache_.direct_delay(p.id, inputs, compute);
}

double RapidRouter::self_direct_delay(const Packet& p) const { return direct_delay(p); }

double RapidRouter::direct_delay_if_stored(const Packet& p) const { return direct_delay(p); }

double RapidRouter::replica_rate(const Packet& p) const {
  if (config_.control == ControlChannelMode::kGlobalOracle) {
    // True global state: depends on other nodes' queues, which this node's
    // generation counters cannot see — always evaluated fresh (each holder's
    // own delay estimate still comes from that holder's cache).
    cache_.note_eager_rate();
    double rate = 0;
    for (NodeId holder : global_->holders(p.id)) {
      const Router* r = ctx().oracle->at(holder);
      const auto* rr = dynamic_cast<const RapidRouter*>(r);
      if (rr == nullptr) continue;
      const double d = rr->self_direct_delay(p);
      if (d > 0 && d != kTimeInfinity) rate += 1.0 / d;
    }
    return rate;
  }

  const bool in_buffer = buffer().contains(p.id);
  const auto compute = [&] {
    double rate = 0;
    if (in_buffer) {
      const double d = self_direct_delay(p);
      if (d > 0 && d != kTimeInfinity) rate += 1.0 / d;
    }
    for (const ReplicaEstimate& est : meta_.replicas(p.id)) {
      if (est.holder == self()) continue;  // always use the fresh self term
      if (est.direct_delay > 0 && est.direct_delay != kTimeInfinity)
        rate += 1.0 / est.direct_delay;
    }
    return rate;
  };
  if (!config_.use_utility_cache) {
    cache_.note_eager_rate();
    return compute();
  }
  const UtilityCache::RateInputs inputs{delay_inputs(p), meta_.generation(p.id), in_buffer};
  return cache_.rate(p.id, inputs, compute);
}

double RapidRouter::expected_total_delay_of(const Packet& p, Time now) const {
  return expected_total_delay(p.age(now), replica_rate(p), config_.utility);
}

double RapidRouter::utility_of(const Packet& p, Time now) const {
#if RAPID_OBS_ENABLED
  // Utility-recompute trace events: the cache decides hit-vs-recompute
  // internally, so a traced run watches its per-cache stats across the
  // evaluation and emits one event per estimator that had to recompute
  // (value 0 = delay path, 1 = rate path). Two counter reads when tracing;
  // nothing otherwise.
  obs::ObsContext* obs_ctx = obs::current();
  const bool traced = obs_ctx != nullptr && obs_ctx->trace.enabled();
  const std::uint64_t delay_before = traced ? cache_.stats().delay_recomputes : 0;
  const std::uint64_t rate_before = traced ? cache_.stats().rate_recomputes : 0;
#endif
  const double utility =
      packet_utility(config_.metric, replica_rate(p), p.age(now),
                     p.deadline == kTimeInfinity ? kTimeInfinity : p.deadline - now,
                     config_.utility);
#if RAPID_OBS_ENABLED
  if (traced) {
    const UtilityCacheStats& s = cache_.stats();
    if (s.delay_recomputes != delay_before)
      obs_ctx->trace.emit(
          {now, obs::TraceEventKind::kUtilityRecompute, self(), kNoNode, p.id, 0});
    if (s.rate_recomputes != rate_before)
      obs_ctx->trace.emit(
          {now, obs::TraceEventKind::kUtilityRecompute, self(), kNoNode, p.id, 1});
  }
#endif
  return utility;
}

double RapidRouter::marginal_for(const Packet& p, RapidRouter* rapid_peer,
                                 const PeerView& peer, Time now) const {
  double d_new = kTimeInfinity;
  if (rapid_peer != nullptr) {
    d_new = rapid_peer->direct_delay_if_stored(p);
  } else {
    // Non-RAPID peer (mixed-protocol runs): fall back to our own matrix view
    // of the peer's meeting time and an empty-queue assumption.
    const Time e = matrix_.expected_meeting_time(peer.self(), p.dst);
    const double eff = (e == kTimeInfinity) ? kTimeInfinity : std::max(e, 1.0);
    d_new = direct_delivery_delay(meetings_needed(0, p.size, expected_opportunity(p.dst)), eff);
  }
  const double remaining =
      p.deadline == kTimeInfinity ? kTimeInfinity : p.deadline - now;
  return marginal_utility(config_.metric, replica_rate(p), d_new, p.age(now), remaining,
                          config_.utility);
}

// --- lifecycle hooks -----------------------------------------------------------

bool RapidRouter::on_generate(const Packet& p) {
  if (!Router::on_generate(p)) return false;
  queue_insert(p);
  meta_.update_replica(p.id, ReplicaEstimate{self(), self_direct_delay(p), p.created});
  if (global_ != nullptr) global_->add_holder(p.id, self());
  return true;
}

void RapidRouter::on_stored(const Packet& p, NodeId /*from*/, std::int64_t /*aux*/,
                            Time now) {
  queue_insert(p);
  meta_.update_replica(p.id, ReplicaEstimate{self(), self_direct_delay(p), now});
  if (global_ != nullptr) global_->add_holder(p.id, self());
}

void RapidRouter::on_dropped(const Packet& p, Time now) {
  queue_erase(p);
  meta_.remove_replica(p.id, self(), now);
  // Evict the memo too: dropped (and deadline-expired) packets may never be
  // acked, and without this the entry table would grow with every packet the
  // router ever evaluated. A later re-replication simply recomputes.
  cache_.forget(p.id);
  if (global_ != nullptr) global_->remove_holder(p.id, self());
}

void RapidRouter::on_acked(const Packet& p, Time /*now*/) {
  queue_erase(p);
  meta_.forget_packet(p.id);
  cache_.forget(p.id);  // acknowledged: never asked about again
  if (global_ != nullptr) global_->remove_holder(p.id, self());
}

void RapidRouter::on_delivered_here(const Packet& p, Time now) {
  if (config_.control != ControlChannelMode::kGlobalOracle) return;
  // Instant global acknowledgment: every node purges its copy immediately.
  global_->mark_delivered(p.id);
  const RouterOracle& oracle = *ctx().oracle;
  for (NodeId n = 0; n < oracle.size(); ++n) {
    Router* r = oracle.at(n);
    if (r == nullptr || r == this) continue;
    if (auto* rr = dynamic_cast<RapidRouter*>(r)) rr->learn_ack(p.id, now);
  }
}

// --- contact protocol -----------------------------------------------------------

void RapidRouter::observe_opportunity(Bytes capacity, NodeId peer, Time now) {
  (void)now;
  // A contact that carried no bytes is not a transfer-opportunity sample;
  // folding zeros into B would wildly inflate the meeting counts of Alg. 2.
  if (capacity <= 0) return;
  avg_opportunity_.add(static_cast<double>(capacity));
  grow_slot(per_peer_opportunity_, peer).add(static_cast<double>(capacity));
}

void RapidRouter::on_contact_batch(const ContactBatch& batch) {
  // Count how many contacts in the span involve this node; if any do, size
  // the plan scratch to the full buffer once so the per-contact plan builds
  // inside the span append without reallocating. Reservation only — the
  // orderings themselves are still built per contact, so batched dispatch
  // stays bit-identical to per-event dispatch.
  std::size_t mine = 0;
  for (std::size_t i = 0; i < batch.count; ++i) {
    const Meeting& m = batch.meetings[i];
    if (m.a == self() || m.b == self()) ++mine;
  }
  if (mine == 0) return;
  const std::size_t held = buffer().count();
  direct_order_.reserve(held);
  replication_order_.reserve(held);
  fallback_scratch_.reserve(held);
}

void RapidRouter::broadcast_own_row(Time /*now*/) {
  const RouterOracle& oracle = *ctx().oracle;
  const MeetingMatrix::RowPtr& own = matrix_.share_row(self());
  for (NodeId n = 0; n < oracle.size(); ++n) {
    Router* r = oracle.at(n);
    if (r == nullptr || r == this) continue;
    if (auto* rr = dynamic_cast<RapidRouter*>(r))
      rr->matrix_.merge_row(self(), own);  // zero-copy: adopt the shared version
  }
}

Bytes RapidRouter::contact_begin(const PeerView& peer, Time now, Bytes meta_budget) {
  Router::contact_begin(peer, now, meta_budget);  // plan rebuilt lazily
  matrix_.observe_meeting(peer.self(), now);

  if (config_.control == ControlChannelMode::kGlobalOracle) {
    broadcast_own_row(now);
    return 0;  // the global channel is out of band
  }
  auto* rapid_peer = peer.as<RapidRouter>();
  if (rapid_peer == nullptr) return 0;
  return exchange_metadata(*rapid_peer, now, meta_budget);
}

Bytes RapidRouter::exchange_metadata(RapidRouter& peer, Time now, Bytes budget) {
  Bytes used = 0;
  const auto fits = [&](Bytes cost) { return used + cost <= budget; };
  const auto finish = [&]() -> Bytes {
    last_sync_[static_cast<std::size_t>(peer.self())] = now;
    return used;
  };

  // Priority 1: scalar — average size of past transfer opportunities.
  if (fits(kScalarBytes)) used += kScalarBytes;

  // Priority 2: delivery acknowledgments (delta: only those the peer lacks).
  // The packed ack table is walked in place; learning into the peer never
  // perturbs our own entries.
  for (const AckTable::Entry& e : acks().entries()) {
    if (peer.knows_ack(e.id)) continue;
    if (!fits(kAckEntryBytes)) break;
    used += kAckEntryBytes;
    peer.learn_ack(e.id, e.when);
  }

  // Priority 3: meeting-time rows changed since the last exchange with this
  // peer (own observations and relayed rows alike). The wire size reads the
  // matrix's incrementally maintained finite-entry count instead of
  // re-scanning the row.
  const Time since = last_sync_[static_cast<std::size_t>(peer.self())];
  for (NodeId u = 0; u < matrix_.num_nodes(); ++u) {
    if (u == peer.self()) continue;
    const Time stamp = matrix_.row_stamp(u);
    if (stamp <= since) continue;
    const Bytes cost = kMeetingRowHeaderBytes +
                       kMeetingRowEntryBytes * static_cast<Bytes>(matrix_.finite_count(u));
    if (!fits(cost)) break;
    used += cost;
    // Same-process gossip adopts the shared immutable row version: one
    // pointer assignment, no n-cell copy.
    peer.matrix_.merge_row(u, matrix_.share_row(u));
  }

  // Priorities 4 and 5: fresh estimates for our own buffered packets and
  // relayed third-party records changed since the last exchange, freshest
  // first, bounded by the relay budget (see RapidConfig). rapid-local mode
  // only ever describes this node's own buffer.
  const Bytes relay_budget =
      used + static_cast<Bytes>(config_.relay_budget_fraction * static_cast<double>(budget));
  const auto relay_fits = [&](Bytes cost) {
    return used + cost <= std::min(relay_budget, budget);
  };

  // Own-buffer estimates first ("for each of its own packets, the updated
  // delivery delay estimate based on current buffer state"). The flat queue
  // table iterates in ascending destination order — deterministic, unlike
  // the hash map it replaced.
  bool exhausted = false;
  cache_.for_each_queue([&](NodeId dst, const std::vector<UtilityCache::QueueEntry>& q) {
    // One SoA-style pass per destination queue: the opportunity and h-hop
    // meeting-time terms are hoisted (they cannot move while the queue is
    // walked) and the Algorithm-2 byte prefix accumulates along the
    // age-sorted entries — the same values the per-packet O(log n) reads
    // would produce, derived once per queue instead of once per packet.
    const Bytes opportunity = expected_opportunity(dst);
    const Time meeting = effective_meeting_time(dst);
    Bytes prefix = 0;
    for (const UtilityCache::QueueEntry& entry : q) {
      const Packet& p = ctx().packet(entry.id);
      const Bytes cost = kPacketRecordHeaderBytes + kReplicaEntryBytes;
      if (!relay_fits(cost)) {
        exhausted = true;
        return false;  // budget spent: stop walking the remaining queues
      }
      used += cost;
      const UtilityCache::DelayInputs inputs{prefix, opportunity, meeting};
      peer.meta_.update_replica(p.id,
                                ReplicaEstimate{self(), direct_delay_at(p, inputs), now});
      prefix += entry.size;
    }
    return true;
  });
  if (exhausted) return finish();

  // Then relayed records ("information about other packets if modified
  // since last exchange with the peer"), freshest change first. The walk
  // fills the simulation-owned scratch arena, so steady-state contacts
  // allocate nothing.
  if (config_.control == ControlChannelMode::kInBand) {
    auto& changed = arena().changed;
    meta_.changed_since(since, changed);
    std::stable_sort(changed.begin(), changed.end(), [](const auto& a, const auto& b) {
      return a.second->last_changed > b.second->last_changed;
    });
    for (const auto& [id, record] : changed) {
      if (peer.knows_ack(id)) continue;
      if (buffer().contains(id)) continue;  // covered above
      const Bytes cost = MetadataStore::record_bytes(*record);
      if (!relay_fits(cost)) return finish();
      used += cost;
      for (const ReplicaEstimate& est : record->replicas) {
        if (est.holder == peer.self()) continue;
        peer.meta_.update_replica(id, est);
      }
    }
  }

  return finish();
}

void RapidRouter::build_contact_plan(const ContactContext& contact, const PeerView& peer) {
  mark_plan_built(peer.self());
  direct_order_.clear();
  direct_cursor_ = 0;
  replication_order_.clear();
  replication_cursor_ = 0;
  auto* rapid_peer = peer.as<RapidRouter>();
  const Time now = contact.now;

  // Step 2 — direct delivery, "in decreasing order of their utility":
  // oldest-first for the delay metrics (the order the maintained
  // per-destination queue already holds), most-urgent-viable-first for the
  // deadline metric.
  const auto& peer_queue = cache_.queue(peer.self());
  for (const UtilityCache::QueueEntry& e : peer_queue) direct_order_.push_back(e.id);
  if (config_.metric == RoutingMetric::kMissedDeadlines) {
    std::stable_sort(direct_order_.begin(), direct_order_.end(),
                     [&](PacketId a, PacketId b) {
                       const Packet& pa = ctx().packet(a);
                       const Packet& pb = ctx().packet(b);
                       const bool va = pa.deadline > now;
                       const bool vb = pb.deadline > now;
                       if (va != vb) return va;  // viable packets first
                       if (va) return pa.deadline < pb.deadline;  // most urgent first
                       return pa.created < pb.created;
                     });
  }

  // Step 3 — replication candidates scored once per contact. Replicating a
  // packet only changes that packet's own utility, so a single descending
  // order is work-conserving (see DESIGN.md). Candidates whose marginal
  // utility is zero (no known path to the destination yet, Eq. 1's
  // infinity - infinity case) form a second tier ordered by fewest believed
  // replicas, so spare bandwidth is still used rather than idled. The
  // expensive inputs of each score (rate sum, peer queue position) come from
  // the utility caches, so only packets whose inputs changed since the last
  // evaluation are recomputed.
  replication_order_.reserve(buffer().count());
  std::vector<Candidate>& fallback = fallback_scratch_;
  fallback.clear();
  buffer().for_each([&](PacketId id, Bytes /*size*/) {
    const Packet& p = ctx().packet(id);
    if (p.dst == peer.self()) return;  // handled by direct delivery
    if (knows_ack(id)) return;
    if (!peer_wants(peer, p)) return;
    if (config_.metric == RoutingMetric::kMissedDeadlines && p.deadline <= now)
      return;  // Eq. 2: a missed deadline contributes nothing
    const double marginal = marginal_for(p, rapid_peer, peer, now);
    Candidate c;
    c.id = id;
    if (marginal <= 0) {
      const double replicas = 1.0 + static_cast<double>(meta_.replicas(id).size());
      c.score = 1.0 / replicas - p.created * 1e-12;  // fewest replicas, then oldest
      fallback.push_back(c);
      return;
    }
    if (config_.metric == RoutingMetric::kMaxDelay) {
      // Eq. 3: only the packet with the maximum expected delay has utility;
      // evaluating in decreasing D(i) is the paper's work-conserving rule.
      c.score = expected_total_delay_of(p, now);
    } else {
      c.score = marginal / static_cast<double>(p.size);
    }
    replication_order_.push_back(c);
  });
  const auto by_score_desc = [](const Candidate& a, const Candidate& b) {
    return a.score > b.score;
  };
  std::stable_sort(replication_order_.begin(), replication_order_.end(), by_score_desc);
  std::stable_sort(fallback.begin(), fallback.end(), by_score_desc);
  replication_order_.insert(replication_order_.end(), fallback.begin(), fallback.end());
}

std::optional<PacketId> RapidRouter::next_transfer(const ContactContext& contact,
                                                   const PeerView& peer) {
  if (!plan_current(peer.self())) build_contact_plan(contact, peer);

  // Direct delivery first.
  while (direct_cursor_ < direct_order_.size()) {
    const PacketId id = direct_order_[direct_cursor_];
    ++direct_cursor_;
    if (!buffer().contains(id)) continue;
    const Packet& p = ctx().packet(id);
    if (peer.has_received(id) || contact_skipped(id, peer.self())) continue;
    if (p.size > contact.remaining) continue;
    return id;
  }

  // Then replication in decreasing marginal utility per byte.
  while (replication_cursor_ < replication_order_.size()) {
    const Candidate c = replication_order_[replication_cursor_];
    ++replication_cursor_;
    if (!buffer().contains(c.id)) continue;  // dropped or acked mid-contact
    const Packet& p = ctx().packet(c.id);
    if (!peer_wants(peer, p)) continue;
    if (p.size > contact.remaining) continue;
    return c.id;
  }
  return std::nullopt;
}

void RapidRouter::on_transfer_success(const Packet& p, const PeerView& peer,
                                      ReceiveOutcome outcome, Time now) {
  if (outcome == ReceiveOutcome::kDelivered || outcome == ReceiveOutcome::kDuplicateDelivery) {
    if (config_.control != ControlChannelMode::kGlobalOracle) {
      // We are talking to the destination: learn the ack right away.
      learn_ack(p.id, now);
    }
    return;
  }
  if (outcome != ReceiveOutcome::kStored) return;
  auto* rapid_peer = peer.as<RapidRouter>();
  if (rapid_peer != nullptr && config_.control != ControlChannelMode::kGlobalOracle) {
    // Track the new replica and hand the packet's known replica list to the
    // receiver (it travels with the packet; full in-band mode only). Refresh
    // our own estimate first so the receiver gets current buffer state.
    meta_.update_replica(p.id, ReplicaEstimate{self(), self_direct_delay(p), now});
    meta_.update_replica(p.id,
                         ReplicaEstimate{peer.self(), rapid_peer->self_direct_delay(p), now});
    if (config_.control == ControlChannelMode::kInBand) {
      for (const ReplicaEstimate& est : meta_.replicas(p.id)) {
        if (est.holder == peer.self()) continue;
        rapid_peer->meta_.update_replica(p.id, est);
      }
    }
  }
}

void RapidRouter::contact_end(const PeerView& peer, Time now) {
  Router::contact_end(peer, now);
  direct_order_.clear();
  replication_order_.clear();
}

void RapidRouter::flush_obs(obs::ObsContext& out) const {
  const UtilityCacheStats& s = cache_.stats();
  out.metrics.add(obs::Counter::kUtilityDelayHits, s.delay_hits);
  out.metrics.add(obs::Counter::kUtilityDelayRecomputes, s.delay_recomputes);
  out.metrics.add(obs::Counter::kUtilityRateHits, s.rate_hits);
  out.metrics.add(obs::Counter::kUtilityRateRecomputes, s.rate_recomputes);
  out.metrics.add(obs::Counter::kUtilityForgets, s.forgets);
  out.metrics.gauge_max(obs::Gauge::kUtilityTrackedPackets, cache_.tracked_packets());
}

PacketId RapidRouter::choose_drop_victim(const Packet& incoming, Time now) {
  // Keep-priority per metric: drop the packet that contributes least to the
  // routing metric (§3.4: "packets with the lowest utility are deleted
  // first"); a source never drops its own unacknowledged packet.
  const auto keep_priority = [&](const Packet& p) -> double {
    // For the incoming (not yet stored) packet, include the self term it
    // would gain by being stored here, so the comparison is like for like.
    double rate = replica_rate(p);
    if (!buffer().contains(p.id)) {
      const double d = direct_delay_if_stored(p);
      if (d > 0 && d != kTimeInfinity) rate += 1.0 / d;
    }
    switch (config_.metric) {
      case RoutingMetric::kAvgDelay:
        return -expected_total_delay(p.age(now), rate, config_.utility);
      case RoutingMetric::kMissedDeadlines: {
        if (p.deadline <= now) return -1e18 + p.created;  // expired: drop first, oldest first
        return packet_utility(config_.metric, rate, p.age(now), p.deadline - now,
                              config_.utility);
      }
      case RoutingMetric::kMaxDelay:
        // Minimizing the max delay wants old packets kept; drop low-D first.
        return expected_total_delay(p.age(now), rate, config_.utility);
    }
    return 0;
  };

  PacketId victim = kNoPacket;
  double victim_priority = 0;
  buffer().for_each([&](PacketId id, Bytes /*size*/) {
    const Packet& p = ctx().packet(id);
    if (p.src == self()) return;  // own un-acked packets are protected
    const double priority = keep_priority(p);
    if (victim == kNoPacket || priority < victim_priority) {
      victim = id;
      victim_priority = priority;
    }
  });
  if (victim == kNoPacket) return kNoPacket;
  // If the incoming packet would itself be the least useful, reject it.
  if (incoming.src != self() && keep_priority(incoming) <= victim_priority) return kNoPacket;
  return victim;
}

void RapidRouter::save_state(BinWriter& out) {
  Router::save_state(out);
  out.tag("RAPD");
  matrix_.save(out);
  meta_.save(out);
  for (Time t : last_sync_) out.f64(t);
  out.f64(avg_opportunity_.value());
  out.u64(avg_opportunity_.count());
  for (const MovingAverage& m : per_peer_opportunity_) {
    out.f64(m.value());
    out.u64(m.count());
  }
  out.u8(global_ != nullptr ? 1 : 0);
  if (global_ != nullptr) {
    // One channel is shared by every RAPID router; the first saver writes
    // the body, the rest write only the intern id.
    std::uint64_t id = 0;
    if (out.intern(global_.get(), id)) global_->save(out);
  }
}

void RapidRouter::load_state(BinReader& in) {
  Router::load_state(in);
  in.expect_tag("RAPD");
  matrix_.load(in);
  meta_.load(in);
  for (Time& t : last_sync_) t = in.f64();
  {
    const double value = in.f64();
    avg_opportunity_.restore(value, in.u64());
  }
  for (MovingAverage& m : per_peer_opportunity_) {
    const double value = in.f64();
    m.restore(value, in.u64());
  }
  const bool had_global = in.u8() != 0;
  if (had_global != (global_ != nullptr))
    BinReader::fail("control-channel mode differs from the snapshot's");
  if (global_ != nullptr) {
    // The factory already wired every restored router to one shared channel;
    // the first loader fills it, the rest just consume the intern id.
    const std::uint64_t id = in.intern_id();
    if (in.interned(id) == nullptr) {
      global_->load(in);
      in.register_interned(id, global_);
    }
  }
  // Rebuild the per-destination queues from the restored buffer. Insertion
  // is by (created, id) age rank, so the rebuilt queues match the originals
  // regardless of arrival order; memoized estimates refill on demand.
  buffer().for_each([&](PacketId id, Bytes /*size*/) { queue_insert(ctx().packet(id)); });
}

RouterFactory make_rapid_factory(const RapidConfig& config, Bytes buffer_capacity,
                                 std::shared_ptr<GlobalChannel> global) {
  return [config, buffer_capacity, global](NodeId node, const SimContext& ctx) {
    std::shared_ptr<GlobalChannel> channel = global;
    if (config.control == ControlChannelMode::kGlobalOracle && channel == nullptr)
      throw std::invalid_argument("make_rapid_factory: global mode without channel");
    return std::make_unique<RapidRouter>(node, buffer_capacity, &ctx, config, channel);
  };
}

}  // namespace rapid
