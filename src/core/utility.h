// The three routing metrics of §3.5 as utility functions, expressed in the
// rate domain (rate = sum over replicas of 1/d_j) so that adding a candidate
// replica is a rate addition and marginal utilities stay well defined even
// when no replica currently has a finite delivery path.
//
//   Metric 1 (Eq. 1): minimize average delay.   U_i = -(T(i) + A(i))
//   Metric 2 (Eq. 2): minimize missed deadlines. U_i = P(a(i) < L(i)-T(i))
//   Metric 3 (Eq. 3): minimize maximum delay.   U_i = -D(i) for the packet
//       with the largest expected delay, 0 otherwise (handled by selection
//       order in the router, which is the paper's work-conserving rule).
#pragma once

#include <string>

#include "util/types.h"

namespace rapid {

// The three §3.5 metrics. Contract: each selects which of Eqs. 1-3 the
// utility functions below evaluate — kAvgDelay is Eq. 1, kMissedDeadlines
// is Eq. 2, kMaxDelay is Eq. 3 — and every router decision (replication
// order, drop victim) flows through these functions, never through ad-hoc
// per-metric arithmetic elsewhere.
enum class RoutingMetric {
  kAvgDelay,
  kMissedDeadlines,
  kMaxDelay,
};

std::string to_string(RoutingMetric metric);

struct UtilityParams {
  // Expected delays are capped at this horizon so that "no known path"
  // (infinite A) still yields finite, comparable marginal utilities.
  double delay_cap = 24.0 * kSecondsPerHour;
};

// Expected delay A from a replica-rate sum, capped.
double capped_expected_delay(double rate, const UtilityParams& params);

// D(i) = T(i) + A(i): the packet's expected total delay.
double expected_total_delay(double age, double rate, const UtilityParams& params);

// Marginal utility (per Eq. 1 / Eq. 2) of adding a replica whose direct
// delivery delay is d_new, given the current rate sum.
//  - avg-delay and max-delay metrics: reduction in expected delay;
//  - deadline metric: increase in delivery probability within
//    `remaining_life` (0 when the deadline has passed).
double marginal_utility(RoutingMetric metric, double rate_before, double d_new,
                        double age, double remaining_life, const UtilityParams& params);

// Absolute utility U_i used for buffer ordering and drop decisions.
double packet_utility(RoutingMetric metric, double rate, double age,
                      double remaining_life, const UtilityParams& params);

}  // namespace rapid
