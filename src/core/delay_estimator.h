// Algorithm "Estimate Delay" (§4.1 / Algorithm 2).
//
// A replica of packet i at node j, queued behind b_j(i) bytes of older
// packets bound for the same destination Z, needs
//     n_j(i) = max(1, ceil((b_j(i) + s_i) / B_j))
// meetings with Z to be delivered directly, where B_j is j's expected
// transfer-opportunity size. (The paper literally writes ceil(b_j(i)/B_j),
// which is zero for the head-of-queue packet; delivering i itself still
// takes one meeting, hence the max/+s_i correction — see DESIGN.md. The
// literal form is kept for comparison.)
//
// The time for n meetings is Erlang(n, lambda); RAPID approximates it by an
// exponential with the same mean n/lambda so the minimum across replicas is
// again exponential (Eqs. 7-9):
//     A(i) = 1 / sum_j (1 / d_j),  d_j = E[M_jZ] * n_j(i)
//     P(a(i) < t) = 1 - exp(-t * sum_j (1 / d_j)).
//
// Contract: everything here is pure arithmetic on its arguments — the
// rate-domain quantities these functions produce are exactly the A(i) and
// P(a(i) < t) terms the utility layer (core/utility.h) substitutes into
// Eqs. 1-3, and the router memoizes their expensive inputs in
// core/utility_cache.h rather than inside this module.
#pragma once

#include <unordered_map>
#include <vector>

#include "util/types.h"

namespace rapid {

// Meetings node j needs with the destination before i is delivered directly.
std::size_t meetings_needed(Bytes bytes_ahead, Bytes packet_size, Bytes expected_opportunity);
// The paper's literal ceil(b/B) form (can return 0); kept for the ablation.
std::size_t meetings_needed_literal(Bytes bytes_ahead, Bytes expected_opportunity);

// d_j: expected direct-delivery time of one replica.
double direct_delivery_delay(std::size_t meetings, Time expected_meeting_time);

// Aggregation across replicas. Delays of infinity contribute nothing.
// rate = sum_j 1/d_j; A = 1/rate (infinity when rate == 0).
double combined_rate(const std::vector<double>& direct_delays);
double expected_delay_from_rate(double rate);
double delivery_probability_from_rate(double rate, double within);

// --- Whole-system snapshot estimation (used by tests and DAG_DELAY
// comparisons; the distributed router computes the same quantities from its
// metadata view instead). All packets are destined to one node Z.
struct DelEstimate {
  double expected_delay = 0;
};
struct QueueSnapshot {
  // queues[n] = packet ids buffered at node n, in delivery order (front
  // first = oldest first).
  std::vector<std::vector<PacketId>> queues;
  // meeting_rate[n] = lambda of node n meeting Z.
  std::vector<double> meeting_rate;
  Bytes packet_size = 1;
  Bytes opportunity = 1;  // per-meeting transfer budget (unit-sized by default)
};
// Estimate Delay applied to the snapshot: per-packet expected delay A(i).
std::unordered_map<PacketId, double> estimate_delay_snapshot(const QueueSnapshot& snapshot);

}  // namespace rapid
