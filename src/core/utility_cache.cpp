#include "core/utility_cache.h"

#include <algorithm>
#include <atomic>
#include <stdexcept>

namespace rapid {

namespace {

std::atomic<std::uint64_t> g_delay_hits{0};
std::atomic<std::uint64_t> g_delay_recomputes{0};
std::atomic<std::uint64_t> g_rate_hits{0};
std::atomic<std::uint64_t> g_rate_recomputes{0};

// splitmix64 finalizer: PacketIds are sequential, so the index needs real
// avalanche to avoid clustering under linear probing.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

UtilityCacheStats utility_cache_global_stats() {
  UtilityCacheStats s;
  s.delay_hits = g_delay_hits.load(std::memory_order_relaxed);
  s.delay_recomputes = g_delay_recomputes.load(std::memory_order_relaxed);
  s.rate_hits = g_rate_hits.load(std::memory_order_relaxed);
  s.rate_recomputes = g_rate_recomputes.load(std::memory_order_relaxed);
  return s;
}

void reset_utility_cache_global_stats() {
  g_delay_hits.store(0, std::memory_order_relaxed);
  g_delay_recomputes.store(0, std::memory_order_relaxed);
  g_rate_hits.store(0, std::memory_order_relaxed);
  g_rate_recomputes.store(0, std::memory_order_relaxed);
}

UtilityCache::UtilityCache(int num_nodes) {
  if (num_nodes < 0) throw std::invalid_argument("UtilityCache: negative num_nodes");
  queues_.resize(static_cast<std::size_t>(num_nodes));
  index_.assign(64, kEmptySlot);
}

UtilityCache::~UtilityCache() {
  g_delay_hits.fetch_add(stats_.delay_hits, std::memory_order_relaxed);
  g_delay_recomputes.fetch_add(stats_.delay_recomputes, std::memory_order_relaxed);
  g_rate_hits.fetch_add(stats_.rate_hits, std::memory_order_relaxed);
  g_rate_recomputes.fetch_add(stats_.rate_recomputes, std::memory_order_relaxed);
}

// --- flat destination queues --------------------------------------------------

void UtilityCache::queue_insert(NodeId dst, const QueueEntry& e) {
  DestQueue& q = queues_[static_cast<std::size_t>(dst)];
  q.entries.insert(std::upper_bound(q.entries.begin(), q.entries.end(), e), e);
  q.total_bytes += e.size;
  ++q.generation;
  for (auto& [size, count] : q.size_counts) {
    if (size == e.size) {
      ++count;
      return;
    }
  }
  q.size_counts.emplace_back(e.size, 1);
}

void UtilityCache::queue_erase(NodeId dst, const QueueEntry& e) {
  DestQueue& q = queues_[static_cast<std::size_t>(dst)];
  const auto pos = std::lower_bound(q.entries.begin(), q.entries.end(), e);
  if (pos == q.entries.end() || pos->id != e.id) return;
  const Bytes size = pos->size;
  q.entries.erase(pos);
  q.total_bytes -= size;
  ++q.generation;
  for (std::size_t i = 0; i < q.size_counts.size(); ++i) {
    if (q.size_counts[i].first == size) {
      if (--q.size_counts[i].second == 0) {
        q.size_counts[i] = q.size_counts.back();
        q.size_counts.pop_back();
      }
      return;
    }
  }
}

Bytes UtilityCache::queue_bytes_before(NodeId dst, const QueueEntry& e) const {
  const DestQueue& q = queues_[static_cast<std::size_t>(dst)];
  const auto pos = std::lower_bound(q.entries.begin(), q.entries.end(), e);
  const auto idx = static_cast<std::size_t>(pos - q.entries.begin());
  if (idx == 0) return 0;
  // Uniform-size fast path (Table 4 workloads): prefix = position * size.
  if (q.size_counts.size() == 1) return static_cast<Bytes>(idx) * q.size_counts[0].first;
  // Hypothetical entry sorting past the tail: the whole queue is ahead.
  if (idx == q.entries.size()) return q.total_bytes;
  Bytes total = 0;
  for (std::size_t i = 0; i < idx; ++i) total += q.entries[i].size;
  return total;
}

// --- open-addressing packet index ---------------------------------------------

std::size_t UtilityCache::probe_start(PacketId id) const {
  return static_cast<std::size_t>(mix(static_cast<std::uint64_t>(id))) & (index_.size() - 1);
}

const UtilityCache::Entry* UtilityCache::find_entry(PacketId id) const {
  const std::size_t mask = index_.size() - 1;
  for (std::size_t h = probe_start(id);; h = (h + 1) & mask) {
    const std::int32_t slot = index_[h];
    if (slot == kEmptySlot) return nullptr;
    if (slot == kTombstone) continue;
    if (entries_[static_cast<std::size_t>(slot)].id == id)
      return &entries_[static_cast<std::size_t>(slot)];
  }
}

void UtilityCache::rehash(std::size_t min_capacity) {
  std::size_t capacity = 64;
  while (capacity < min_capacity) capacity *= 2;
  index_.assign(capacity, kEmptySlot);
  index_used_ = entries_.size();
  const std::size_t mask = capacity - 1;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    std::size_t h = probe_start(entries_[i].id);
    while (index_[h] != kEmptySlot) h = (h + 1) & mask;
    index_[h] = static_cast<std::int32_t>(i);
  }
}

UtilityCache::Entry& UtilityCache::entry_for(PacketId id) {
  // Keep load (live + tombstones) under ~70% so probe chains stay short.
  if ((index_used_ + 1) * 10 >= index_.size() * 7) rehash(entries_.size() * 4 + 64);
  const std::size_t mask = index_.size() - 1;
  std::size_t first_tombstone = index_.size();
  for (std::size_t h = probe_start(id);; h = (h + 1) & mask) {
    const std::int32_t slot = index_[h];
    if (slot == kTombstone) {
      if (first_tombstone == index_.size()) first_tombstone = h;
      continue;
    }
    if (slot == kEmptySlot) {
      entries_.emplace_back();
      entries_.back().id = id;
      const auto target = first_tombstone != index_.size() ? first_tombstone : h;
      if (target == h) ++index_used_;  // reusing a tombstone keeps the load flat
      index_[target] = static_cast<std::int32_t>(entries_.size() - 1);
      return entries_.back();
    }
    if (entries_[static_cast<std::size_t>(slot)].id == id)
      return entries_[static_cast<std::size_t>(slot)];
  }
}

void UtilityCache::forget(PacketId id) {
  const std::size_t mask = index_.size() - 1;
  for (std::size_t h = probe_start(id);; h = (h + 1) & mask) {
    const std::int32_t slot = index_[h];
    if (slot == kEmptySlot) return;
    if (slot == kTombstone) continue;
    const auto i = static_cast<std::size_t>(slot);
    if (entries_[i].id != id) continue;
    index_[h] = kTombstone;
    // Swap-remove from the packed vector and repoint the moved entry's slot.
    const std::size_t last = entries_.size() - 1;
    if (i != last) {
      entries_[i] = entries_[last];
      for (std::size_t g = probe_start(entries_[i].id);; g = (g + 1) & mask) {
        const std::int32_t s = index_[g];
        if (s == static_cast<std::int32_t>(last)) {
          index_[g] = static_cast<std::int32_t>(i);
          break;
        }
      }
    }
    entries_.pop_back();
    return;
  }
}

}  // namespace rapid
