#include "core/utility_cache.h"

#include <algorithm>
#include <atomic>
#include <stdexcept>

#include "util/slab.h"

namespace rapid {

namespace {

std::atomic<std::uint64_t> g_delay_hits{0};
std::atomic<std::uint64_t> g_delay_recomputes{0};
std::atomic<std::uint64_t> g_rate_hits{0};
std::atomic<std::uint64_t> g_rate_recomputes{0};

}  // namespace

UtilityCacheStats utility_cache_global_stats() {
  UtilityCacheStats s;
  s.delay_hits = g_delay_hits.load(std::memory_order_relaxed);
  s.delay_recomputes = g_delay_recomputes.load(std::memory_order_relaxed);
  s.rate_hits = g_rate_hits.load(std::memory_order_relaxed);
  s.rate_recomputes = g_rate_recomputes.load(std::memory_order_relaxed);
  return s;
}

void reset_utility_cache_global_stats() {
  g_delay_hits.store(0, std::memory_order_relaxed);
  g_delay_recomputes.store(0, std::memory_order_relaxed);
  g_rate_hits.store(0, std::memory_order_relaxed);
  g_rate_recomputes.store(0, std::memory_order_relaxed);
}

UtilityCache::UtilityCache(int num_nodes) {
  if (num_nodes < 0) throw std::invalid_argument("UtilityCache: negative num_nodes");
  queues_.resize(static_cast<std::size_t>(num_nodes));
}

UtilityCache::~UtilityCache() {
  g_delay_hits.fetch_add(stats_.delay_hits, std::memory_order_relaxed);
  g_delay_recomputes.fetch_add(stats_.delay_recomputes, std::memory_order_relaxed);
  g_rate_hits.fetch_add(stats_.rate_hits, std::memory_order_relaxed);
  g_rate_recomputes.fetch_add(stats_.rate_recomputes, std::memory_order_relaxed);
}

// --- flat destination queues --------------------------------------------------

void UtilityCache::queue_insert(NodeId dst, const QueueEntry& e) {
  DestQueue& q = queues_[static_cast<std::size_t>(dst)];
  if (q.entries.empty())
    nonempty_.insert(std::lower_bound(nonempty_.begin(), nonempty_.end(), dst), dst);
  q.entries.insert(std::upper_bound(q.entries.begin(), q.entries.end(), e), e);
  q.total_bytes += e.size;
  ++q.generation;
  for (auto& [size, count] : q.size_counts) {
    if (size == e.size) {
      ++count;
      return;
    }
  }
  q.size_counts.emplace_back(e.size, 1);
}

void UtilityCache::queue_erase(NodeId dst, const QueueEntry& e) {
  DestQueue& q = queues_[static_cast<std::size_t>(dst)];
  const auto pos = std::lower_bound(q.entries.begin(), q.entries.end(), e);
  if (pos == q.entries.end() || pos->id != e.id) return;
  const Bytes size = pos->size;
  q.entries.erase(pos);
  if (q.entries.empty())
    nonempty_.erase(std::lower_bound(nonempty_.begin(), nonempty_.end(), dst));
  q.total_bytes -= size;
  ++q.generation;
  for (std::size_t i = 0; i < q.size_counts.size(); ++i) {
    if (q.size_counts[i].first == size) {
      if (--q.size_counts[i].second == 0) {
        q.size_counts[i] = q.size_counts.back();
        q.size_counts.pop_back();
      }
      return;
    }
  }
}

Bytes UtilityCache::queue_bytes_before(NodeId dst, const QueueEntry& e) const {
  const DestQueue& q = queues_[static_cast<std::size_t>(dst)];
  const auto pos = std::lower_bound(q.entries.begin(), q.entries.end(), e);
  const auto idx = static_cast<std::size_t>(pos - q.entries.begin());
  if (idx == 0) return 0;
  // Uniform-size fast path (Table 4 workloads): prefix = position * size.
  if (q.size_counts.size() == 1) return static_cast<Bytes>(idx) * q.size_counts[0].first;
  // Hypothetical entry sorting past the tail: the whole queue is ahead.
  if (idx == q.entries.size()) return q.total_bytes;
  Bytes total = 0;
  for (std::size_t i = 0; i < idx; ++i) total += q.entries[i].size;
  return total;
}

// --- direct packet index ------------------------------------------------------

UtilityCache::Entry& UtilityCache::entry_for(PacketId id) {
  if (id < 0) throw std::invalid_argument("UtilityCache: negative packet id");
  std::int32_t& slot = grow_slot(index_, id, kEmptySlot);
  if (slot >= 0) return entries_[static_cast<std::size_t>(slot)];
  entries_.emplace_back();
  entries_.back().id = id;
  slot = static_cast<std::int32_t>(entries_.size() - 1);
  return entries_.back();
}

void UtilityCache::forget(PacketId id) {
  if (id < 0 || static_cast<std::size_t>(id) >= index_.size()) return;
  const std::int32_t slot = index_[static_cast<std::size_t>(id)];
  if (slot < 0) return;
  ++stats_.forgets;
  index_[static_cast<std::size_t>(id)] = kEmptySlot;
  // Swap-remove from the packed vector and repoint the moved entry's slot.
  const auto i = static_cast<std::size_t>(slot);
  const std::size_t last = entries_.size() - 1;
  if (i != last) {
    entries_[i] = entries_[last];
    index_[static_cast<std::size_t>(entries_[i].id)] = static_cast<std::int32_t>(i);
  }
  entries_.pop_back();
}

}  // namespace rapid
