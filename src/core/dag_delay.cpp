#include "core/dag_delay.h"

#include <optional>
#include <stdexcept>
#include <vector>

namespace rapid {
namespace {

struct Replica {
  std::size_t node;
  std::size_t position;  // 0 = head of queue
};

class DagSolver {
 public:
  DagSolver(const QueueSnapshot& snapshot, double horizon, std::size_t bins)
      : snapshot_(snapshot), horizon_(horizon), bins_(bins) {
    for (std::size_t n = 0; n < snapshot.queues.size(); ++n) {
      for (std::size_t k = 0; k < snapshot.queues[n].size(); ++k) {
        replicas_[snapshot.queues[n][k]].push_back(Replica{n, k});
      }
    }
  }

  DagDelayResult solve() {
    DagDelayResult result;
    for (const auto& [id, reps] : replicas_) {
      const DiscreteDist& d = packet_dist(id);
      result.distribution.emplace(id, d);
      result.expected_delay.emplace(id, d.mean());
    }
    return result;
  }

 private:
  const QueueSnapshot& snapshot_;
  double horizon_;
  std::size_t bins_;
  std::unordered_map<PacketId, std::vector<Replica>> replicas_;
  std::unordered_map<PacketId, DiscreteDist> memo_;
  std::unordered_map<PacketId, bool> in_progress_;

  DiscreteDist never() const { return DiscreteDist(horizon_, bins_); }  // all-zero CDF

  DiscreteDist meet_dist(std::size_t node) const {
    const double lambda = snapshot_.meeting_rate[node];
    if (lambda <= 0) return never();
    return DiscreteDist::exponential(lambda, horizon_, bins_);
  }

  const DiscreteDist& packet_dist(PacketId id) {
    auto it = memo_.find(id);
    if (it != memo_.end()) return it->second;
    if (in_progress_[id])
      throw std::logic_error("dag_delay: cycle in dependency graph");
    in_progress_[id] = true;

    std::optional<DiscreteDist> best;
    for (const Replica& r : replicas_.at(id)) {
      DiscreteDist contrib = meet_dist(r.node);
      if (r.position > 0) {
        const PacketId succ = snapshot_.queues[r.node][r.position - 1];
        contrib = packet_dist(succ).convolve(contrib);
      }
      best = best.has_value() ? best->min_with(contrib) : contrib;
    }
    in_progress_[id] = false;
    auto [pos, inserted] = memo_.emplace(id, best.value_or(never()));
    return pos->second;
  }
};

}  // namespace

DagDelayResult dag_delay(const QueueSnapshot& snapshot, double horizon, std::size_t bins) {
  if (snapshot.queues.size() != snapshot.meeting_rate.size())
    throw std::invalid_argument("dag_delay: size mismatch");
  return DagSolver(snapshot, horizon, bins).solve();
}

}  // namespace rapid
