// DAG_DELAY (paper Appendix C): the idealized delay estimator that keeps the
// non-vertical dependency edges Estimate Delay ignores.
//
// Packets destined to a common node Z sit in per-node queues. The delivery
// delay of a replica of p at node n is d(succ) ⊕ e_n — the full (min-)
// distribution of the packet ahead of it, convolved with n's inter-meeting
// distribution — and d(p) is the minimum over p's replicas. Queue heads have
// d' = e_n. Transfer opportunities are unit-sized (one packet per meeting),
// exactly the assumption under which the paper defines the dependency graph.
//
// Distributions are discretized CDF grids (stats/discrete_dist.h), so ⊕ is a
// convolution and min composes survival functions.
#pragma once

#include <unordered_map>

#include "core/delay_estimator.h"
#include "stats/discrete_dist.h"
#include "util/types.h"

namespace rapid {

struct DagDelayResult {
  std::unordered_map<PacketId, DiscreteDist> distribution;
  std::unordered_map<PacketId, double> expected_delay;
};

// `snapshot.packet_size` / `snapshot.opportunity` are ignored: the dependency
// graph is defined for unit-sized opportunities (Appendix C notes it is no
// longer valid otherwise).
DagDelayResult dag_delay(const QueueSnapshot& snapshot, double horizon, std::size_t bins);

}  // namespace rapid
