#include "core/delay_estimator.h"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace rapid {

std::size_t meetings_needed(Bytes bytes_ahead, Bytes packet_size, Bytes expected_opportunity) {
  if (bytes_ahead < 0 || packet_size <= 0)
    throw std::invalid_argument("meetings_needed: bad sizes");
  if (expected_opportunity <= 0) return std::numeric_limits<std::size_t>::max();
  const Bytes total = bytes_ahead + packet_size;
  const Bytes n = (total + expected_opportunity - 1) / expected_opportunity;
  return static_cast<std::size_t>(n < 1 ? 1 : n);
}

std::size_t meetings_needed_literal(Bytes bytes_ahead, Bytes expected_opportunity) {
  if (bytes_ahead < 0) throw std::invalid_argument("meetings_needed_literal: bad sizes");
  if (expected_opportunity <= 0) return std::numeric_limits<std::size_t>::max();
  return static_cast<std::size_t>((bytes_ahead + expected_opportunity - 1) /
                                  expected_opportunity);
}

double direct_delivery_delay(std::size_t meetings, Time expected_meeting_time) {
  if (expected_meeting_time == kTimeInfinity ||
      meetings == std::numeric_limits<std::size_t>::max())
    return kTimeInfinity;
  if (expected_meeting_time < 0)
    throw std::invalid_argument("direct_delivery_delay: negative meeting time");
  return expected_meeting_time * static_cast<double>(meetings);
}

double combined_rate(const std::vector<double>& direct_delays) {
  double rate = 0;
  for (double d : direct_delays) {
    if (d == kTimeInfinity) continue;
    if (d <= 0) throw std::invalid_argument("combined_rate: non-positive delay");
    rate += 1.0 / d;
  }
  return rate;
}

double expected_delay_from_rate(double rate) {
  if (rate <= 0) return kTimeInfinity;
  return 1.0 / rate;
}

double delivery_probability_from_rate(double rate, double within) {
  if (within <= 0 || rate <= 0) return 0;
  return 1.0 - std::exp(-rate * within);
}

std::unordered_map<PacketId, double> estimate_delay_snapshot(const QueueSnapshot& snapshot) {
  if (snapshot.queues.size() != snapshot.meeting_rate.size())
    throw std::invalid_argument("estimate_delay_snapshot: size mismatch");

  // Gather, per packet, the direct delays of all its replicas (Step 2), then
  // combine via the exponential approximation (Step 3).
  std::unordered_map<PacketId, double> rate_sum;
  for (std::size_t node = 0; node < snapshot.queues.size(); ++node) {
    const double lambda = snapshot.meeting_rate[node];
    Bytes ahead = 0;
    for (PacketId id : snapshot.queues[node]) {
      const std::size_t n = meetings_needed(ahead, snapshot.packet_size, snapshot.opportunity);
      if (lambda > 0) {
        const double d = direct_delivery_delay(n, 1.0 / lambda);
        if (d != kTimeInfinity && d > 0) rate_sum[id] += 1.0 / d;
        else rate_sum.try_emplace(id, 0.0);
      } else {
        rate_sum.try_emplace(id, 0.0);
      }
      ahead += snapshot.packet_size;
    }
  }

  std::unordered_map<PacketId, double> out;
  out.reserve(rate_sum.size());
  for (const auto& [id, rate] : rate_sum) out[id] = expected_delay_from_rate(rate);
  return out;
}

}  // namespace rapid
