#include "core/meeting_matrix.h"

#include <algorithm>
#include <stdexcept>

#include "util/binio.h"

namespace rapid {

MeetingMatrix::MeetingMatrix(NodeId owner, int num_nodes, int max_hops)
    : owner_(owner), num_nodes_(num_nodes), max_hops_(max_hops) {
  if (owner < 0 || owner >= num_nodes)
    throw std::invalid_argument("MeetingMatrix: owner out of range");
  if (max_hops < 1) throw std::invalid_argument("MeetingMatrix: max_hops < 1");
  rows_.resize(static_cast<std::size_t>(num_nodes));  // versions materialize lazily
  stamps_.assign(static_cast<std::size_t>(num_nodes), -kTimeInfinity);
  last_met_.assign(static_cast<std::size_t>(num_nodes), 0.0);
  meet_count_.assign(static_cast<std::size_t>(num_nodes), 0);
  empty_row_.assign(static_cast<std::size_t>(num_nodes), kTimeInfinity);
  hop_rows_.resize(static_cast<std::size_t>(num_nodes));
}

void MeetingMatrix::observe_meeting(NodeId peer, Time now) {
  if (peer < 0 || peer >= num_nodes_ || peer == owner_)
    throw std::invalid_argument("MeetingMatrix::observe_meeting: bad peer");
  auto& count = meet_count_[static_cast<std::size_t>(peer)];
  auto& last = last_met_[static_cast<std::size_t>(peer)];
  const Time gap = now - last;  // first gap measured from time 0

  // Own-row versions are immutable once gossiped: clone before editing when
  // anyone else holds the current version (the gossiped copy stays valid
  // wherever it travelled). A version nobody adopted yet — use_count == 1 —
  // is still private and is edited in place, allocation-free.
  RowPtr& slot = rows_[static_cast<std::size_t>(owner_)];
  RowVersion* fresh;
  if (slot != nullptr && slot.use_count() == 1) {
    fresh = const_cast<RowVersion*>(slot.get());
  } else {
    auto clone = slot == nullptr ? std::make_shared<RowVersion>()
                                 : std::make_shared<RowVersion>(*slot);
    fresh = clone.get();
    slot = std::move(clone);
  }
  if (fresh->cells.empty())
    fresh->cells.assign(static_cast<std::size_t>(num_nodes_), kTimeInfinity);
  Time& cell = fresh->cells[static_cast<std::size_t>(peer)];
  if (count == 0) {
    if (cell == kTimeInfinity) fresh->finite_cols.push_back(peer);
    cell = gap;
  } else {
    cell += (gap - cell) / static_cast<double>(count + 1);
  }
  fresh->stamp = now;
  ++count;
  last = now;
  stamps_[static_cast<std::size_t>(owner_)] = now;
  ++generation_;
}

bool MeetingMatrix::merge_row(NodeId node, const std::vector<Time>& row, Time stamp) {
  if (node < 0 || node >= num_nodes_)
    throw std::invalid_argument("MeetingMatrix::merge_row: bad node");
  if (node == owner_) return false;  // never overwrite own observations
  if (row.size() != static_cast<std::size_t>(num_nodes_))
    throw std::invalid_argument("MeetingMatrix::merge_row: row size mismatch");
  if (stamp <= stamps_[static_cast<std::size_t>(node)]) return false;
  auto version = std::make_shared<RowVersion>();
  version->cells = row;
  for (NodeId v = 0; v < num_nodes_; ++v)
    if (row[static_cast<std::size_t>(v)] != kTimeInfinity) version->finite_cols.push_back(v);
  version->stamp = stamp;
  rows_[static_cast<std::size_t>(node)] = std::move(version);
  stamps_[static_cast<std::size_t>(node)] = stamp;
  ++generation_;
  return true;
}

bool MeetingMatrix::merge_row(NodeId node, const RowPtr& version) {
  if (node < 0 || node >= num_nodes_)
    throw std::invalid_argument("MeetingMatrix::merge_row: bad node");
  if (node == owner_ || version == nullptr) return false;
  if (version->stamp <= stamps_[static_cast<std::size_t>(node)]) return false;
  rows_[static_cast<std::size_t>(node)] = version;
  stamps_[static_cast<std::size_t>(node)] = version->stamp;
  ++generation_;
  return true;
}

const std::vector<Time>& MeetingMatrix::own_row() const {
  const RowPtr& v = rows_[static_cast<std::size_t>(owner_)];
  return v == nullptr ? empty_row_ : v->cells;
}

const std::vector<Time>& MeetingMatrix::row(NodeId node) const {
  if (node < 0 || node >= num_nodes_)
    throw std::invalid_argument("MeetingMatrix::row: bad node");
  const RowPtr& v = rows_[static_cast<std::size_t>(node)];
  return v == nullptr ? empty_row_ : v->cells;
}

Time MeetingMatrix::direct_mean(NodeId from, NodeId to) const {
  if (from == to) return 0;
  const RowPtr& v = rows_[static_cast<std::size_t>(from)];
  if (v == nullptr) return kTimeInfinity;
  return v->cells[static_cast<std::size_t>(to)];
}

const std::vector<Time>& MeetingMatrix::hop_row(NodeId from) const {
  HopRow& cached = hop_rows_[static_cast<std::size_t>(from)];
  if (!cached.dist.empty() && cached.generation == generation_) return cached.dist;

  // Single-source relaxation: after round r, dist[v] is the cheapest sum of
  // expected pairwise meeting times along a path of at most r+1 rows (never
  // more, matching the paper's h = 3 bound).
  const auto n = static_cast<std::size_t>(num_nodes_);
  std::vector<Time>& dist = cached.dist;
  dist = row(from);  // 1-hop paths
  dist[static_cast<std::size_t>(from)] = 0;
  std::vector<Time> next;
  for (int round = 1; round < max_hops_; ++round) {
    next = dist;
    bool changed = false;
    for (std::size_t mid = 0; mid < n; ++mid) {
      const Time head = dist[mid];
      if (head == kTimeInfinity) continue;
      const RowPtr& mid_version = rows_[mid];
      if (mid_version == nullptr) continue;
      // Walk only the finite columns (rows are sparse in large fleets).
      for (const NodeId v : mid_version->finite_cols) {
        const Time candidate = head + mid_version->cells[static_cast<std::size_t>(v)];
        if (candidate < next[static_cast<std::size_t>(v)]) {
          next[static_cast<std::size_t>(v)] = candidate;
          changed = true;
        }
      }
    }
    dist.swap(next);
    if (!changed) break;
  }
  cached.generation = generation_;
  return dist;
}

Time MeetingMatrix::expected_meeting_time(NodeId from, NodeId to) const {
  if (from < 0 || from >= num_nodes_ || to < 0 || to >= num_nodes_)
    throw std::invalid_argument("MeetingMatrix::expected_meeting_time: bad node");
  if (from == to) return 0;
  return hop_row(from)[static_cast<std::size_t>(to)];
}

int MeetingMatrix::peers_met() const {
  int met = 0;
  for (int count : meet_count_)
    if (count > 0) ++met;
  return met;
}

void MeetingMatrix::save(BinWriter& out) const {
  out.tag("MMTX");
  out.u64(generation_);
  const auto n = static_cast<std::size_t>(num_nodes_);
  for (std::size_t u = 0; u < n; ++u) out.f64(stamps_[u]);
  for (std::size_t u = 0; u < n; ++u) out.f64(last_met_[u]);
  for (std::size_t u = 0; u < n; ++u) out.i64(meet_count_[u]);
  for (std::size_t u = 0; u < n; ++u) {
    const RowPtr& v = rows_[u];
    if (v == nullptr) {
      out.u8(0);
      continue;
    }
    out.u8(1);
    std::uint64_t id = 0;
    if (out.intern(v.get(), id)) {
      out.f64(v->stamp);
      for (Time cell : v->cells) out.f64(cell);
    }
  }
}

void MeetingMatrix::load(BinReader& in) {
  in.expect_tag("MMTX");
  generation_ = in.u64();
  const auto n = static_cast<std::size_t>(num_nodes_);
  for (std::size_t u = 0; u < n; ++u) stamps_[u] = in.f64();
  for (std::size_t u = 0; u < n; ++u) last_met_[u] = in.f64();
  for (std::size_t u = 0; u < n; ++u) meet_count_[u] = static_cast<int>(in.i64());
  for (std::size_t u = 0; u < n; ++u) {
    if (in.u8() == 0) {
      rows_[u] = nullptr;
      continue;
    }
    const std::uint64_t id = in.intern_id();
    if (std::shared_ptr<void> known = in.interned(id)) {
      rows_[u] = std::static_pointer_cast<const RowVersion>(known);
      continue;
    }
    auto version = std::make_shared<RowVersion>();
    version->stamp = in.f64();
    version->cells.resize(n);
    for (std::size_t c = 0; c < n; ++c) {
      version->cells[c] = in.f64();
      if (version->cells[c] != kTimeInfinity)
        version->finite_cols.push_back(static_cast<NodeId>(c));
    }
    in.register_interned(id, version);
    rows_[u] = std::move(version);
  }
}

}  // namespace rapid
