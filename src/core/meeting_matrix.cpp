#include "core/meeting_matrix.h"

#include <algorithm>
#include <stdexcept>

namespace rapid {

MeetingMatrix::MeetingMatrix(NodeId owner, int num_nodes, int max_hops)
    : owner_(owner), num_nodes_(num_nodes), max_hops_(max_hops) {
  if (owner < 0 || owner >= num_nodes)
    throw std::invalid_argument("MeetingMatrix: owner out of range");
  if (max_hops < 1) throw std::invalid_argument("MeetingMatrix: max_hops < 1");
  rows_.assign(static_cast<std::size_t>(num_nodes),
               std::vector<Time>(static_cast<std::size_t>(num_nodes), kTimeInfinity));
  stamps_.assign(static_cast<std::size_t>(num_nodes), -kTimeInfinity);
  last_met_.assign(static_cast<std::size_t>(num_nodes), 0.0);
  meet_count_.assign(static_cast<std::size_t>(num_nodes), 0);
}

void MeetingMatrix::observe_meeting(NodeId peer, Time now) {
  if (peer < 0 || peer >= num_nodes_ || peer == owner_)
    throw std::invalid_argument("MeetingMatrix::observe_meeting: bad peer");
  auto& count = meet_count_[static_cast<std::size_t>(peer)];
  auto& last = last_met_[static_cast<std::size_t>(peer)];
  const Time gap = now - last;  // first gap measured from time 0
  Time& cell = rows_[static_cast<std::size_t>(owner_)][static_cast<std::size_t>(peer)];
  if (count == 0) {
    cell = gap;
  } else {
    cell += (gap - cell) / static_cast<double>(count + 1);
  }
  ++count;
  last = now;
  stamps_[static_cast<std::size_t>(owner_)] = now;
  dirty_ = true;
}

bool MeetingMatrix::merge_row(NodeId node, const std::vector<Time>& row, Time stamp) {
  if (node < 0 || node >= num_nodes_)
    throw std::invalid_argument("MeetingMatrix::merge_row: bad node");
  if (node == owner_) return false;  // never overwrite own observations
  if (row.size() != static_cast<std::size_t>(num_nodes_))
    throw std::invalid_argument("MeetingMatrix::merge_row: row size mismatch");
  if (stamp <= stamps_[static_cast<std::size_t>(node)]) return false;
  rows_[static_cast<std::size_t>(node)] = row;
  stamps_[static_cast<std::size_t>(node)] = stamp;
  dirty_ = true;
  return true;
}

const std::vector<Time>& MeetingMatrix::own_row() const {
  return rows_[static_cast<std::size_t>(owner_)];
}

const std::vector<Time>& MeetingMatrix::row(NodeId node) const {
  if (node < 0 || node >= num_nodes_)
    throw std::invalid_argument("MeetingMatrix::row: bad node");
  return rows_[static_cast<std::size_t>(node)];
}

Time MeetingMatrix::direct_mean(NodeId from, NodeId to) const {
  if (from == to) return 0;
  return rows_[static_cast<std::size_t>(from)][static_cast<std::size_t>(to)];
}

void MeetingMatrix::recompute_hop_distances() const {
  const auto n = static_cast<std::size_t>(num_nodes_);
  hop_dist_ = rows_;
  for (std::size_t u = 0; u < n; ++u) hop_dist_[u][u] = 0;
  // max_hops - 1 double-buffered relaxation rounds extend paths one edge at
  // a time: after round r, hop_dist_ holds the cheapest expected time using
  // at most r+1 meetings (never more, matching the paper's h = 3 bound).
  for (int round = 1; round < max_hops_; ++round) {
    const std::vector<std::vector<Time>> prev = hop_dist_;
    bool changed = false;
    for (std::size_t u = 0; u < n; ++u) {
      for (std::size_t mid = 0; mid < n; ++mid) {
        const Time leg = rows_[u][mid];
        if (leg == kTimeInfinity) continue;
        for (std::size_t v = 0; v < n; ++v) {
          const Time rest = prev[mid][v];
          if (rest == kTimeInfinity) continue;
          const Time candidate = leg + rest;
          if (candidate < hop_dist_[u][v]) {
            hop_dist_[u][v] = candidate;
            changed = true;
          }
        }
      }
    }
    if (!changed) break;
  }
  dirty_ = false;
}

Time MeetingMatrix::expected_meeting_time(NodeId from, NodeId to) const {
  if (from < 0 || from >= num_nodes_ || to < 0 || to >= num_nodes_)
    throw std::invalid_argument("MeetingMatrix::expected_meeting_time: bad node");
  if (from == to) return 0;
  if (dirty_) recompute_hop_distances();
  return hop_dist_[static_cast<std::size_t>(from)][static_cast<std::size_t>(to)];
}

int MeetingMatrix::peers_met() const {
  int met = 0;
  for (int count : meet_count_)
    if (count > 0) ++met;
  return met;
}

}  // namespace rapid
