#include "core/meeting_matrix.h"

#include <algorithm>
#include <stdexcept>

#include "util/binio.h"

namespace rapid {

MeetingMatrix::MeetingMatrix(NodeId owner, int num_nodes, int max_hops)
    : owner_(owner), num_nodes_(num_nodes), max_hops_(max_hops) {
  if (owner < 0 || owner >= num_nodes)
    throw std::invalid_argument("MeetingMatrix: owner out of range");
  if (max_hops < 1) throw std::invalid_argument("MeetingMatrix: max_hops < 1");
  rows_.resize(static_cast<std::size_t>(num_nodes));  // versions materialize lazily
  stamps_.assign(static_cast<std::size_t>(num_nodes), -kTimeInfinity);
  last_met_.assign(static_cast<std::size_t>(num_nodes), 0.0);
  meet_count_.assign(static_cast<std::size_t>(num_nodes), 0);
  empty_row_.assign(static_cast<std::size_t>(num_nodes), kTimeInfinity);
  hop_rows_.resize(static_cast<std::size_t>(num_nodes));
}

void MeetingMatrix::observe_meeting(NodeId peer, Time now) {
  if (peer < 0 || peer >= num_nodes_ || peer == owner_)
    throw std::invalid_argument("MeetingMatrix::observe_meeting: bad peer");
  auto& count = meet_count_[static_cast<std::size_t>(peer)];
  auto& last = last_met_[static_cast<std::size_t>(peer)];
  const Time gap = now - last;  // first gap measured from time 0

  // Own-row versions are immutable once gossiped: clone before editing when
  // anyone else holds the current version (the gossiped copy stays valid
  // wherever it travelled). A version nobody adopted yet — use_count == 1 —
  // is still private and is edited in place, allocation-free.
  RowPtr& slot = rows_[static_cast<std::size_t>(owner_)];
  RowVersion* fresh;
  if (slot != nullptr && slot.use_count() == 1) {
    fresh = const_cast<RowVersion*>(slot.get());
  } else {
    auto clone = slot == nullptr ? std::make_shared<RowVersion>()
                                 : std::make_shared<RowVersion>(*slot);
    fresh = clone.get();
    slot = std::move(clone);
  }
  if (fresh->cells.empty())
    fresh->cells.assign(static_cast<std::size_t>(num_nodes_), kTimeInfinity);
  Time& cell = fresh->cells[static_cast<std::size_t>(peer)];
  if (cell == kTimeInfinity) fresh->finite.emplace_back(peer, kTimeInfinity);
  if (count == 0) {
    cell = gap;
  } else {
    cell += (gap - cell) / static_cast<double>(count + 1);
  }
  // Keep the packed mirror in sync. Recently re-observed peers sit near the
  // tail of the append-ordered list, so scan from the back.
  for (std::size_t i = fresh->finite.size(); i-- > 0;) {
    if (fresh->finite[i].first == peer) {
      fresh->finite[i].second = cell;
      break;
    }
  }
  fresh->stamp = now;
  ++count;
  last = now;
  stamps_[static_cast<std::size_t>(owner_)] = now;
  ++generation_;
}

bool MeetingMatrix::merge_row(NodeId node, const std::vector<Time>& row, Time stamp) {
  if (node < 0 || node >= num_nodes_)
    throw std::invalid_argument("MeetingMatrix::merge_row: bad node");
  if (node == owner_) return false;  // never overwrite own observations
  if (row.size() != static_cast<std::size_t>(num_nodes_))
    throw std::invalid_argument("MeetingMatrix::merge_row: row size mismatch");
  if (stamp <= stamps_[static_cast<std::size_t>(node)]) return false;
  auto version = std::make_shared<RowVersion>();
  version->cells = row;
  for (NodeId v = 0; v < num_nodes_; ++v) {
    const Time cell = row[static_cast<std::size_t>(v)];
    if (cell != kTimeInfinity) version->finite.emplace_back(v, cell);
  }
  version->stamp = stamp;
  rows_[static_cast<std::size_t>(node)] = std::move(version);
  stamps_[static_cast<std::size_t>(node)] = stamp;
  ++generation_;
  return true;
}

bool MeetingMatrix::merge_row(NodeId node, const RowPtr& version) {
  if (node < 0 || node >= num_nodes_)
    throw std::invalid_argument("MeetingMatrix::merge_row: bad node");
  if (node == owner_ || version == nullptr) return false;
  if (version->stamp <= stamps_[static_cast<std::size_t>(node)]) return false;
  rows_[static_cast<std::size_t>(node)] = version;
  stamps_[static_cast<std::size_t>(node)] = version->stamp;
  ++generation_;
  return true;
}

const std::vector<Time>& MeetingMatrix::own_row() const {
  const RowPtr& v = rows_[static_cast<std::size_t>(owner_)];
  return v == nullptr ? empty_row_ : v->cells;
}

const std::vector<Time>& MeetingMatrix::row(NodeId node) const {
  if (node < 0 || node >= num_nodes_)
    throw std::invalid_argument("MeetingMatrix::row: bad node");
  const RowPtr& v = rows_[static_cast<std::size_t>(node)];
  return v == nullptr ? empty_row_ : v->cells;
}

Time MeetingMatrix::direct_mean(NodeId from, NodeId to) const {
  if (from == to) return 0;
  const RowPtr& v = rows_[static_cast<std::size_t>(from)];
  if (v == nullptr) return kTimeInfinity;
  return v->cells[static_cast<std::size_t>(to)];
}

namespace {

// Flat scratch for the frontier relaxation in hop_row(). One instance per
// thread serves every matrix on that thread (the relaxation never nests),
// so a 2000-node fleet carries one set of buffers per shard thread instead
// of per node. `mark`/`best` are epoch-stamped: bumping `epoch` resets them
// in O(1) between rounds.
struct RelaxScratch {
  std::vector<NodeId> frontier;       // rows whose dist improved last round
  std::vector<NodeId> next_frontier;  // rows improving this round, discovery order
  std::vector<Time> best;             // best candidate this round, keyed by mark
  std::vector<std::uint32_t> mark;    // mark[v] == epoch → best[v] is live
  std::uint32_t epoch = 0;

  void ensure(std::size_t n) {
    if (mark.size() < n) {
      mark.assign(n, 0);
      best.resize(n);
      epoch = 0;
    }
  }
};

RelaxScratch& relax_scratch() {
  thread_local RelaxScratch scratch;
  return scratch;
}

}  // namespace

#ifdef RAPID_HOPSTAT
#include <cstdio>
namespace {
struct HopStat {
  unsigned long long calls = 0, recomputes = 0, edges = 0, frontier = 0, improved = 0;
  ~HopStat() {
    std::fprintf(stderr,
                 "[hopstat] calls=%llu recomputes=%llu edges=%llu frontier=%llu improved=%llu\n",
                 calls, recomputes, edges, frontier, improved);
  }
};
HopStat g_hopstat;
}  // namespace
#define HOPSTAT(field, amount) (g_hopstat.field += (amount))
#else
#define HOPSTAT(field, amount) ((void)0)
#endif

const std::vector<Time>& MeetingMatrix::hop_row(NodeId from) const {
  HopRow& cached = hop_rows_[static_cast<std::size_t>(from)];
  HOPSTAT(calls, 1);
  if (!cached.dist.empty() && cached.generation == generation_) return cached.dist;
  HOPSTAT(recomputes, 1);

  // Single-source relaxation: after round r, dist[v] is the cheapest sum of
  // expected pairwise meeting times along a path of at most r+1 rows (never
  // more, matching the paper's h = 3 bound).
  //
  // Frontier form of the classic Jacobi sweep: a round scans only the rows
  // whose distance improved in the previous round (any candidate through an
  // unchanged row was already ≥ dist when it was last scanned, so the min is
  // unaffected), collects improvements against the frozen pre-round dist
  // into an epoch-marked flat buffer, and applies them after the scan. Path
  // sums associate left to right exactly as in the full sweep and min is
  // order-independent, so the resulting doubles are bit-identical — only the
  // memory traffic changes (no per-round n-cell copy, no n-row scan).
  const auto n = static_cast<std::size_t>(num_nodes_);
  std::vector<Time>& dist = cached.dist;
  dist = row(from);  // 1-hop paths
  dist[static_cast<std::size_t>(from)] = 0;

  RelaxScratch& scratch = relax_scratch();
  scratch.ensure(n);
  scratch.frontier.clear();
  scratch.frontier.push_back(from);
  if (const RowPtr& own = rows_[static_cast<std::size_t>(from)]) {
    for (const auto& [v, val] : own->finite)
      if (v != from) scratch.frontier.push_back(v);
  }

  for (int round = 1; round < max_hops_ && !scratch.frontier.empty(); ++round) {
    ++scratch.epoch;
    if (scratch.epoch == 0) {  // wrapped: stale marks could alias, reset
      std::fill(scratch.mark.begin(), scratch.mark.end(), 0);
      scratch.epoch = 1;
    }
    scratch.next_frontier.clear();
    HOPSTAT(frontier, scratch.frontier.size());
    const NodeId* fr = scratch.frontier.data();
    const std::size_t fn = scratch.frontier.size();
    // RowVersions are scattered heap objects shared across the fleet, so a
    // cold row costs a dependent-load chain (slot → object → pair data).
    // The frontier is known ahead of time: prefetch the object a few rows
    // out and its pair data one row out to overlap those chains.
    constexpr std::size_t kObjAhead = 4;
    for (std::size_t f = 0; f < fn; ++f) {
      if (f + kObjAhead < fn)
        __builtin_prefetch(rows_[static_cast<std::size_t>(fr[f + kObjAhead])].get());
      if (f + 1 < fn) {
        if (const RowVersion* ahead =
                rows_[static_cast<std::size_t>(fr[f + 1])].get())
          __builtin_prefetch(ahead->finite.data());
      }
      const NodeId mid = fr[f];
      const Time head = dist[static_cast<std::size_t>(mid)];
      if (head == kTimeInfinity) continue;
      const RowVersion* mid_version = rows_[static_cast<std::size_t>(mid)].get();
      if (mid_version == nullptr) continue;
      HOPSTAT(edges, mid_version->finite.size());
      // Stream the packed (col, value) pairs — rows are sparse in large
      // fleets, and the mirror avoids gathering scattered cells lines.
      const auto* pairs = mid_version->finite.data();
      const std::size_t k = mid_version->finite.size();
      for (std::size_t i = 0; i < k; ++i) {
        const Time candidate = head + pairs[i].second;
        const auto vi = static_cast<std::size_t>(pairs[i].first);
        if (candidate < dist[vi]) {
          if (scratch.mark[vi] != scratch.epoch) {
            scratch.mark[vi] = scratch.epoch;
            scratch.best[vi] = candidate;
            scratch.next_frontier.push_back(pairs[i].first);
          } else if (candidate < scratch.best[vi]) {
            scratch.best[vi] = candidate;
          }
        }
      }
    }
    HOPSTAT(improved, scratch.next_frontier.size());
    for (const NodeId v : scratch.next_frontier)
      dist[static_cast<std::size_t>(v)] = scratch.best[static_cast<std::size_t>(v)];
    scratch.frontier.swap(scratch.next_frontier);
  }
  cached.generation = generation_;
  return dist;
}

Time MeetingMatrix::expected_meeting_time(NodeId from, NodeId to) const {
  if (from < 0 || from >= num_nodes_ || to < 0 || to >= num_nodes_)
    throw std::invalid_argument("MeetingMatrix::expected_meeting_time: bad node");
  if (from == to) return 0;
  return hop_row(from)[static_cast<std::size_t>(to)];
}

int MeetingMatrix::peers_met() const {
  int met = 0;
  for (int count : meet_count_)
    if (count > 0) ++met;
  return met;
}

void MeetingMatrix::save(BinWriter& out) const {
  out.tag("MMTX");
  out.u64(generation_);
  const auto n = static_cast<std::size_t>(num_nodes_);
  for (std::size_t u = 0; u < n; ++u) out.f64(stamps_[u]);
  for (std::size_t u = 0; u < n; ++u) out.f64(last_met_[u]);
  for (std::size_t u = 0; u < n; ++u) out.i64(meet_count_[u]);
  for (std::size_t u = 0; u < n; ++u) {
    const RowPtr& v = rows_[u];
    if (v == nullptr) {
      out.u8(0);
      continue;
    }
    out.u8(1);
    std::uint64_t id = 0;
    if (out.intern(v.get(), id)) {
      out.f64(v->stamp);
      for (Time cell : v->cells) out.f64(cell);
    }
  }
}

void MeetingMatrix::load(BinReader& in) {
  in.expect_tag("MMTX");
  generation_ = in.u64();
  const auto n = static_cast<std::size_t>(num_nodes_);
  for (std::size_t u = 0; u < n; ++u) stamps_[u] = in.f64();
  for (std::size_t u = 0; u < n; ++u) last_met_[u] = in.f64();
  for (std::size_t u = 0; u < n; ++u) meet_count_[u] = static_cast<int>(in.i64());
  for (std::size_t u = 0; u < n; ++u) {
    if (in.u8() == 0) {
      rows_[u] = nullptr;
      continue;
    }
    const std::uint64_t id = in.intern_id();
    if (std::shared_ptr<void> known = in.interned(id)) {
      rows_[u] = std::static_pointer_cast<const RowVersion>(known);
      continue;
    }
    auto version = std::make_shared<RowVersion>();
    version->stamp = in.f64();
    version->cells.resize(n);
    for (std::size_t c = 0; c < n; ++c) {
      version->cells[c] = in.f64();
      if (version->cells[c] != kTimeInfinity)
        version->finite.emplace_back(static_cast<NodeId>(c), version->cells[c]);
    }
    in.register_interned(id, version);
    rows_[u] = std::move(version);
  }
}

}  // namespace rapid
