// Inter-node meeting-time estimation (§4.1.2).
//
// Every node tabulates the average time to meet every other node from its
// own meeting history, exchanges these rows as metadata, and estimates
// E[M_XZ] as the expected time for X to meet Z in at most h hops (h = 3 in
// the paper): if X never meets Z directly, the estimate is the cheapest sum
// of expected pairwise meeting times along a path of at most h rows. Pairs
// unreachable in h hops get infinity.
#pragma once

#include <vector>

#include "util/types.h"

namespace rapid {

class MeetingMatrix {
 public:
  // `owner` is the node whose local view this is; `num_nodes` sizes the table.
  MeetingMatrix(NodeId owner, int num_nodes, int max_hops = 3);

  NodeId owner() const { return owner_; }
  int num_nodes() const { return num_nodes_; }

  // Record a direct meeting between the owner and `peer` at `now`. The
  // running mean of inter-meeting gaps is the row entry; the first gap is
  // measured from time 0, as the testbed implementation does.
  void observe_meeting(NodeId peer, Time now);

  // Merge another node's row (from metadata). Rows are versioned by `stamp`;
  // stale rows are ignored. Returns true if the row was accepted.
  bool merge_row(NodeId node, const std::vector<Time>& row, Time stamp);

  // The owner's own averaged row and its freshness stamp.
  const std::vector<Time>& own_row() const;
  Time row_stamp(NodeId node) const { return stamps_[static_cast<std::size_t>(node)]; }
  const std::vector<Time>& row(NodeId node) const;

  // Direct average only (infinity if never seen in any known row).
  Time direct_mean(NodeId from, NodeId to) const;

  // E[M_{from,to}] within max_hops hops; infinity when unreachable.
  Time expected_meeting_time(NodeId from, NodeId to) const;

  // Number of finite entries in the owner's own row (how many peers it met).
  int peers_met() const;

 private:
  NodeId owner_;
  int num_nodes_;
  int max_hops_;
  // rows_[u][v] = u's averaged time to meet v, as most recently learnt.
  std::vector<std::vector<Time>> rows_;
  std::vector<Time> stamps_;
  std::vector<Time> last_met_;   // owner's last direct meeting time per peer
  std::vector<int> meet_count_;  // owner's direct meeting counts

  mutable bool dirty_ = true;
  mutable std::vector<std::vector<Time>> hop_dist_;  // cached h-hop all-pairs

  void recompute_hop_distances() const;
};

}  // namespace rapid
