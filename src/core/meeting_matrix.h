// Inter-node meeting-time estimation (§4.1.2).
//
// MeetingMatrix is one node's local table of expected inter-meeting times —
// the E[M_XZ] input to Algorithm 2's direct-delivery estimate d_j =
// E[M_jZ] * n_j(i). Every node tabulates the average time to meet every
// other node from its own meeting history (observe_meeting maintains the
// running mean of inter-meeting gaps), exchanges these rows as metadata
// (merge_row; rows are versioned by timestamp so stale gossip is ignored),
// and estimates E[M_XZ] as the expected time for X to meet Z in at most h
// hops (h = 3 in the paper): if X never meets Z directly, the estimate is
// the cheapest sum of expected pairwise meeting times along a path of at
// most h rows. Pairs unreachable in h hops get infinity, which the utility
// layer (core/utility.h) turns into a zero marginal via the delay cap.
//
// Storage and recomputation are incremental, sized for 500+ node fleets:
// a row version is an immutable snapshot (cells + precomputed finite-column
// list + stamp) shared between every node that learnt it, so gossiping a
// row is one pointer assignment instead of an n-cell copy, the wire-size
// accounting reads the finite count in O(1), and the h-hop relaxation walks
// only finite columns. h-hop estimates are computed per *source* on demand
// (O(h·n·k) single-source relaxation over k finite entries per row) and
// memoized until the matrix changes; every mutation bumps a generation
// counter that the utility cache (core/utility_cache.h) keys its delay
// estimates on.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "util/types.h"

namespace rapid {

class BinReader;  // util/binio.h
class BinWriter;

// One node's meeting-time table. Contract: expected_meeting_time(X, Z) is
// the E[M_XZ] term that Algorithm 2 multiplies into the per-replica direct
// delay d_j = E[M_jZ] * n_j(i), which Eq. 7-9 then aggregate and Eqs. 1-3
// consume as A(i); it is a pure function of the rows learnt so far
// (observe_meeting / merge_row), infinity when Z is unreachable within
// max_hops rows, and memoized internally (the const query methods may fill
// caches but never change what any query returns).
class MeetingMatrix {
 public:
  // An immutable learnt row: cells, a packed mirror of the finite entries,
  // and the freshness stamp. Shared (never mutated) between every matrix
  // that learnt this version. `finite` duplicates the finite cells as one
  // contiguous (column, value) array (finite[i].second ==
  // cells[finite[i].first] always): the h-hop relaxation streams it with a
  // single pointer dereference per row instead of gathering ~30 scattered
  // cache lines out of each 16 KB cells array — the difference between a
  // latency-bound and a streaming inner loop at 2000 nodes.
  struct RowVersion {
    std::vector<Time> cells;
    std::vector<std::pair<NodeId, Time>> finite;
    Time stamp = -kTimeInfinity;
  };
  using RowPtr = std::shared_ptr<const RowVersion>;

  // `owner` is the node whose local view this is; `num_nodes` sizes the table.
  MeetingMatrix(NodeId owner, int num_nodes, int max_hops = 3);

  NodeId owner() const { return owner_; }
  int num_nodes() const { return num_nodes_; }

  // Record a direct meeting between the owner and `peer` at `now`. The
  // running mean of inter-meeting gaps is the row entry; the first gap is
  // measured from time 0, as the testbed implementation does. Produces a
  // fresh own-row version (the previous one stays valid wherever it was
  // gossiped to).
  void observe_meeting(NodeId peer, Time now);

  // Merge another node's row (from metadata). Rows are versioned by `stamp`;
  // stale rows are ignored. Returns true if the row was accepted.
  bool merge_row(NodeId node, const std::vector<Time>& row, Time stamp);
  // Zero-copy variant for same-process gossip: adopts the shared version
  // (cells, finite columns and stamp travel as one pointer).
  bool merge_row(NodeId node, const RowPtr& version);
  // The learnt version of `node`'s row, for zero-copy gossip; null when
  // nothing was learnt yet.
  const RowPtr& share_row(NodeId node) const {
    return rows_[static_cast<std::size_t>(node)];
  }

  // The owner's own averaged row and its freshness stamp.
  const std::vector<Time>& own_row() const;
  Time row_stamp(NodeId node) const { return stamps_[static_cast<std::size_t>(node)]; }
  // A node's row as most recently learnt; all-infinity for unknown nodes.
  const std::vector<Time>& row(NodeId node) const;

  // Direct average only (infinity if never seen in any known row).
  Time direct_mean(NodeId from, NodeId to) const;

  // E[M_{from,to}] within max_hops hops; infinity when unreachable.
  Time expected_meeting_time(NodeId from, NodeId to) const;

  // Number of finite entries in the owner's own row (how many peers it met).
  int peers_met() const;

  // Number of finite entries in `node`'s row as most recently learnt; O(1)
  // (precomputed per row version), feeding the metadata wire-size accounting.
  int finite_count(NodeId node) const {
    const RowPtr& v = rows_[static_cast<std::size_t>(node)];
    return v == nullptr ? 0 : static_cast<int>(v->finite.size());
  }

  // Bumped on every accepted mutation (observe_meeting, accepted merge_row);
  // the utility cache keys meeting-time-dependent estimates on this.
  std::uint64_t generation() const { return generation_; }

  // Snapshot/restore. Shared RowVersions are serialized once through the
  // writer's interning table and re-shared on load, so the gossip sharing
  // graph (and therefore the clone-vs-edit-in-place decisions of
  // observe_meeting) replays exactly; finite-column lists are rebuilt from
  // the cells (their order is not behavioral) and the h-hop memo restores
  // cold — it refills from identical inputs.
  void save(BinWriter& out) const;
  void load(BinReader& in);

 private:
  NodeId owner_;
  int num_nodes_;
  int max_hops_;
  // rows_[u] = u's averaged-meeting-time row, as most recently learnt.
  // Null = nothing learnt about u yet (treated as all-infinity).
  std::vector<RowPtr> rows_;
  std::vector<Time> stamps_;
  std::vector<Time> last_met_;   // owner's last direct meeting time per peer
  std::vector<int> meet_count_;  // owner's direct meeting counts
  std::vector<Time> empty_row_;  // shared all-infinity row for unknown nodes
  std::uint64_t generation_ = 0;

  // Memoized single-source h-hop distances, recomputed lazily per source
  // when the generation they were computed at goes stale. Direct-indexed by
  // source (an empty dist = never queried).
  struct HopRow {
    std::uint64_t generation = 0;
    std::vector<Time> dist;
  };
  mutable std::vector<HopRow> hop_rows_;

  // A recompute is a frontier-driven relaxation over flat arrays (see
  // hop_row() in the .cpp): per round it scans only the rows whose distance
  // improved in the previous round instead of all n rows, collects candidate
  // improvements into a flat update list, and applies them after the scan —
  // Jacobi semantics (same values bit for bit as the full n-scan), a fraction
  // of the memory traffic. The scratch lives in one thread-local pool shared
  // by every matrix on the thread, so 2000-node fleets do not carry per-node
  // relaxation buffers.
  const std::vector<Time>& hop_row(NodeId from) const;
};

}  // namespace rapid
