// The per-node metadata view RAPID's control channel maintains (§4.2):
// "For each encountered packet i, rapid maintains a list of nodes that carry
// the replica of i, and for each replica, an estimated time for direct
// delivery."
//
// Entries are versioned with timestamps so exchanges are delta-encoded: a
// node only sends records that changed since its last exchange with that
// peer, "which reduces the size of the exchange considerably."
//
// Storage is flat: packet ids are dense pool indexes, so membership is a
// direct-indexed position table (no hash buckets) into a packed record
// vector kept parallel to a compact occupied-id list — the delta-exchange
// walk and replica-rate scans run linear over contiguous memory, and only
// known packets ever carry a record.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/types.h"

namespace rapid {

class BinReader;  // util/binio.h
class BinWriter;

struct ReplicaEstimate {
  NodeId holder = kNoNode;
  double direct_delay = 0;  // holder's own estimate of its direct-delivery time
  Time stamp = -kTimeInfinity;
};

struct PacketMetadata {
  std::vector<ReplicaEstimate> replicas;
  Time last_changed = -kTimeInfinity;
  // Store-unique version of this record, assigned from a monotonic counter
  // on every accepted change; the utility cache keys replica-rate sums on it
  // (a bump marks exactly this packet's cached rate dirty).
  std::uint64_t generation = 0;
};

// Modeled wire sizes (bytes) for metadata accounting.
inline constexpr Bytes kPacketRecordHeaderBytes = 8;  // packet id
inline constexpr Bytes kReplicaEntryBytes = 8;        // holder id + delay estimate
inline constexpr Bytes kAckEntryBytes = 8;
inline constexpr Bytes kMeetingRowHeaderBytes = 4;
inline constexpr Bytes kMeetingRowEntryBytes = 8;
inline constexpr Bytes kScalarBytes = 8;  // e.g. average transfer size

// One node's replica ledger. Contract: replicas(i) is the node's current
// belief about which nodes hold packet i and at what self-estimated direct
// delay — the d_j terms whose rate sum 1/A(i) = sum_j 1/d_j feeds the
// utilities of Eqs. 1-3. Entries are last-writer-wins by stamp (stale
// gossip never overwrites fresher belief), generation(i) versions every
// accepted change for the utility cache, and the store never invents
// entries: everything present arrived via update_replica.
class MetadataStore {
 public:
  // Pre-sizes the id index for an experiment whose packet population is
  // known up front (the pool is fully generated before the simulation
  // starts).
  void reserve_packets(std::size_t n) { pos_.reserve(n); }

  // Record (or refresh) a replica estimate; keeps the newest stamp per
  // (packet, holder). Returns true if anything changed.
  bool update_replica(PacketId id, const ReplicaEstimate& estimate);
  // The holder no longer carries the packet (dropped it).
  bool remove_replica(PacketId id, NodeId holder, Time stamp);
  // Forget the packet entirely (it was acknowledged as delivered).
  void forget_packet(PacketId id);

  bool knows(PacketId id) const {
    return id >= 0 && static_cast<std::size_t>(id) < pos_.size() &&
           pos_[static_cast<std::size_t>(id)] >= 0;
  }
  // Pointer into the packed record vector; invalidated by the next
  // update/forget of *any* packet (records are packed, not pinned).
  const PacketMetadata* find(PacketId id) const {
    return knows(id) ? &records_[record_index(id)] : nullptr;
  }
  // Believed replicas of a packet (possibly stale — that is the point).
  const std::vector<ReplicaEstimate>& replicas(PacketId id) const {
    return knows(id) ? records_[record_index(id)].replicas : kEmpty;
  }
  std::size_t packet_count() const { return occupied_.size(); }

  // The packet record's current version: 0 when the packet is unknown,
  // otherwise a value that changes on every accepted update/removal and is
  // never reused by this store. Dirty-tracking key for cached rate sums.
  std::uint64_t generation(PacketId id) const {
    return knows(id) ? records_[record_index(id)].generation : 0;
  }

  // Records changed since `since`, appended to `out` (cleared first) as
  // (packet, metadata) pairs; used for the delta exchange with a reusable
  // scratch vector. Order is unspecified.
  void changed_since(Time since, std::vector<std::pair<PacketId, const PacketMetadata*>>& out) const;
  // Allocating convenience wrapper (tests, API boundaries).
  std::vector<std::pair<PacketId, const PacketMetadata*>> changed_since(Time since) const;

  // Wire size of one record.
  static Bytes record_bytes(const PacketMetadata& meta);

  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t i = 0; i < occupied_.size(); ++i) fn(occupied_[i], records_[i]);
  }

  // Snapshot/restore: serializes the packed record order exactly (it drives
  // the changed_since output order, whose stable-sort tie-break is
  // behavioral) along with every stamp and generation, so a restored store
  // is indistinguishable from the original.
  void save(BinWriter& out) const;
  void load(BinReader& in);

 private:
  std::size_t record_index(PacketId id) const {
    return static_cast<std::size_t>(pos_[static_cast<std::size_t>(id)]);
  }
  // Ensures a record exists and is marked occupied; returns it.
  PacketMetadata& materialize(PacketId id);

  // Packed live records; records_[k] belongs to packet occupied_[k]. Only
  // known packets carry a record, so the store never zero-initializes a
  // slot-per-packet-per-node slab.
  std::vector<PacketMetadata> records_;
  std::vector<PacketId> occupied_;
  std::vector<std::int32_t> pos_;  // id -> index into records_/occupied_, -1 = absent
  std::uint64_t next_generation_ = 0;
  static const std::vector<ReplicaEstimate> kEmpty;
};

}  // namespace rapid
