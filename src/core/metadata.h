// The per-node metadata view RAPID's control channel maintains (§4.2):
// "For each encountered packet i, rapid maintains a list of nodes that carry
// the replica of i, and for each replica, an estimated time for direct
// delivery."
//
// Entries are versioned with timestamps so exchanges are delta-encoded: a
// node only sends records that changed since its last exchange with that
// peer, "which reduces the size of the exchange considerably."
#pragma once

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "util/types.h"

namespace rapid {

struct ReplicaEstimate {
  NodeId holder = kNoNode;
  double direct_delay = 0;  // holder's own estimate of its direct-delivery time
  Time stamp = -kTimeInfinity;
};

struct PacketMetadata {
  std::vector<ReplicaEstimate> replicas;
  Time last_changed = -kTimeInfinity;
};

// Modeled wire sizes (bytes) for metadata accounting.
inline constexpr Bytes kPacketRecordHeaderBytes = 8;  // packet id
inline constexpr Bytes kReplicaEntryBytes = 8;        // holder id + delay estimate
inline constexpr Bytes kAckEntryBytes = 8;
inline constexpr Bytes kMeetingRowHeaderBytes = 4;
inline constexpr Bytes kMeetingRowEntryBytes = 8;
inline constexpr Bytes kScalarBytes = 8;  // e.g. average transfer size

class MetadataStore {
 public:
  // Record (or refresh) a replica estimate; keeps the newest stamp per
  // (packet, holder). Returns true if anything changed.
  bool update_replica(PacketId id, const ReplicaEstimate& estimate);
  // The holder no longer carries the packet (dropped it).
  bool remove_replica(PacketId id, NodeId holder, Time stamp);
  // Forget the packet entirely (it was acknowledged as delivered).
  void forget_packet(PacketId id);

  bool knows(PacketId id) const { return by_packet_.count(id) != 0; }
  const PacketMetadata* find(PacketId id) const;
  // Believed replicas of a packet (possibly stale — that is the point).
  const std::vector<ReplicaEstimate>& replicas(PacketId id) const;
  std::size_t packet_count() const { return by_packet_.size(); }

  // Records changed since `since`, as (packet, metadata) pairs; used for the
  // delta exchange. Order is unspecified.
  std::vector<std::pair<PacketId, const PacketMetadata*>> changed_since(Time since) const;

  // Wire size of one record.
  static Bytes record_bytes(const PacketMetadata& meta);

  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const auto& [id, meta] : by_packet_) fn(id, meta);
  }

 private:
  std::unordered_map<PacketId, PacketMetadata> by_packet_;
  static const std::vector<ReplicaEstimate> kEmpty;
};

}  // namespace rapid
