#include "fault/fault_model.h"

#include <algorithm>
#include <stdexcept>

namespace rapid {

FaultModel::FaultModel(const NodeFaultConfig& config, int num_nodes) : config_(config) {
  if (!config_.enabled())
    throw std::invalid_argument("FaultModel: node faults are not enabled");
  if (num_nodes < 1) throw std::invalid_argument("FaultModel: need >= 1 node");
  heap_.reserve(static_cast<std::size_t>(num_nodes));
  for (NodeId n = 0; n < num_nodes; ++n) {
    NodeStream s{FaultEvent{}, Rng(config_.seed).split("node-fault",
                                                       static_cast<std::uint64_t>(n))};
    // Every node starts up; its first transition is a crash at the end of the
    // first uptime phase.
    s.event.node = n;
    s.event.up = false;
    s.event.time = s.rng.exponential_mean(config_.mean_uptime);
    heap_.push_back(s);
  }
  std::make_heap(heap_.begin(), heap_.end());
}

void FaultModel::pop() {
  std::pop_heap(heap_.begin(), heap_.end());
  NodeStream& s = heap_.back();
  // The popped transition flips the node's phase; the next one ends it.
  s.event.time += s.rng.exponential_mean(s.event.up ? config_.mean_uptime
                                                    : config_.mean_downtime);
  s.event.up = !s.event.up;
  std::push_heap(heap_.begin(), heap_.end());
}

namespace {

class FaultEventSource final : public EventSource {
 public:
  FaultEventSource(const NodeFaultConfig& config, int num_nodes)
      : model_(config, num_nodes) {}

  const SimEvent* peek() override {
    const FaultEvent& f = model_.peek();
    event_.kind = SimEvent::Kind::kFault;
    event_.time = f.time;
    event_.packet = nullptr;
    event_.fault = f;
    return &event_;
  }

  void pop() override { model_.pop(); }

 private:
  FaultModel model_;
  SimEvent event_;
};

}  // namespace

std::unique_ptr<EventSource> make_fault_source(const NodeFaultConfig& config,
                                               int num_nodes) {
  return std::make_unique<FaultEventSource>(config, num_nodes);
}

}  // namespace rapid
