// Fault-injection configuration: the knobs that turn perfect nodes and
// lossless links into failing ones (ROADMAP item 4(b); ISSUE 9).
//
// Two independent fault families, both pure functions of config + seed:
//
//   * NodeFaultConfig — node crash/recover processes. Each node alternates
//     exponential uptime and downtime phases drawn from its own seeded
//     stream (fault/fault_model.h merges the per-node streams into one
//     time-ordered EventSource). A crashed node misses its contacts and
//     generates nothing; on crash its in-transit buffer is dropped or
//     preserved per `drop_buffers`; on recovery it rejoins with whatever
//     routing state survived — estimates go stale and re-converge, exactly
//     like a real reboot.
//
//   * LinkFaultConfig — per-contact link faults honored by ContactSession:
//     byte-level copy corruption with a loss probability drawn from a
//     per-pair process (some radio pairs are persistently worse), and
//     metadata-channel degradation (a degraded contact keeps only a
//     fraction of its metadata budget, so routing views desynchronize).
//
// This header is dependency-free so both dtn/ (ContactSession) and sim/
// (Simulation) can embed the configs without a layering cycle; the event
// machinery that needs the simulation lives in fault/fault_model.h.
#pragma once

#include <cstdint>

#include "util/types.h"

namespace rapid {

// One node crash (up = false) or recovery (up = true). Defined here, beside
// the configs, so sim/simulation.h can carry it on SimEvent without
// depending on the fault machinery.
struct FaultEvent {
  Time time = 0;
  NodeId node = kNoNode;
  bool up = false;
};

// Node crash/recover process. Disabled by default (both means zero).
struct NodeFaultConfig {
  // Mean exponential uptime before a crash / downtime before recovery, in
  // simulation seconds. Both must be > 0 to enable the process.
  double mean_uptime = 0.0;
  double mean_downtime = 0.0;
  // Crash policy: true models diskless nodes (the in-transit buffer is lost,
  // drops accounted through the normal drop path); false models a power
  // cycle with persistent storage (buffers survive, only connectivity and
  // freshness are lost).
  bool drop_buffers = true;
  // Seed of the per-node crash/recover streams (split by node id, so fault
  // schedules are independent of fleet iteration order and thread count).
  std::uint64_t seed = 0xFA11;

  bool enabled() const { return mean_uptime > 0.0 && mean_downtime > 0.0; }
};

// Per-contact link faults. Disabled by default (both rates zero).
struct LinkFaultConfig {
  // Base probability that a copy crossing the air is corrupted and discarded
  // by the receiver (its bytes are still charged to the channel).
  double loss_rate = 0.0;
  // Per-pair spread: each unordered node pair scales the base rate by a
  // uniform draw in [1 - spread, 1 + spread] (clamped to [0, 1] probability),
  // keyed by the pair, so some links are persistently lossier than others.
  double loss_spread = 0.0;
  // Probability that a contact's metadata channel is degraded, and the
  // fraction of the metadata budget that survives degradation.
  double meta_degrade_rate = 0.0;
  double meta_survive_fraction = 0.5;
  // Seed of the per-pair and per-meeting fault draws (split by pair id and
  // meeting index; independent of execution order and thread count).
  std::uint64_t seed = 0xFA12;

  bool enabled() const { return loss_rate > 0.0 || meta_degrade_rate > 0.0; }
};

}  // namespace rapid
