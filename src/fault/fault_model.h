// FaultModel: the deterministic node crash/recover event stream.
//
// Each node draws an alternating sequence of exponential uptime/downtime
// phases from its own sub-stream (Rng(seed).split("node-fault", node)), so a
// node's fault schedule depends only on (seed, node) — adding nodes, changing
// protocols, or resharding the run never perturbs it. The per-node streams
// merge through a binary heap into one time-ordered sequence; ties break
// toward the lower node id, so the merged order is a pure function of the
// config too.
//
// make_fault_source wraps a FaultModel as a Simulation EventSource emitting
// SimEvent::Kind::kFault events. The Simulation registers it itself when
// SimConfig::node_faults is enabled (after the built-in workload/schedule
// sources, before any caller-added feed), keeps the up/down mask, suppresses
// contacts and packet generation at down nodes, and applies the crash policy
// through Router::on_crash.
//
// Snapshot note: like every deterministic source, a FaultModel is not
// serialized — the restoring side reconstructs it from the same config and
// fast-forwards past the cutoff (FaultModel::peek times are non-decreasing,
// which is all fast_forward_sources needs).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "fault/fault_config.h"
#include "sim/simulation.h"
#include "util/rng.h"
#include "util/types.h"

namespace rapid {

// The merged, time-ordered crash/recover stream for a fleet. Lazy: each
// node's next transition is materialized on demand, so memory is O(nodes)
// regardless of how many faults the horizon spans.
class FaultModel {
 public:
  // Requires config.enabled(); throws std::invalid_argument otherwise.
  FaultModel(const NodeFaultConfig& config, int num_nodes);

  // Next event, stable until pop(); nullptr never happens (the process is
  // unbounded) but the Simulation's horizon clips it like any source.
  const FaultEvent& peek() const { return heap_.front().event; }
  void pop();

 private:
  struct NodeStream {
    FaultEvent event;
    Rng rng;
    // Ordering for the min-heap: earliest time first, lower node on ties.
    bool operator<(const NodeStream& other) const {
      if (event.time != other.event.time) return event.time > other.event.time;
      return event.node > other.event.node;
    }
  };

  NodeFaultConfig config_;
  std::vector<NodeStream> heap_;
};

// Wraps the model (constructed from `config`) as a kFault EventSource.
std::unique_ptr<EventSource> make_fault_source(const NodeFaultConfig& config,
                                               int num_nodes);

}  // namespace rapid
