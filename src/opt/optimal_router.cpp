#include "opt/optimal_router.h"

namespace rapid {

OptimalRouter::OptimalRouter(NodeId self, Bytes buffer_capacity, const SimContext* ctx,
                             std::shared_ptr<const OptimalPlan> plan)
    : Router(self, buffer_capacity, ctx), plan_(std::move(plan)) {}

std::optional<PacketId> OptimalRouter::next_transfer(const ContactContext& contact,
                                                     const PeerView& peer) {
  if (active_meeting_ != contact.meeting_index) {
    active_meeting_ = contact.meeting_index;
    cursor_ = 0;
  }
  const auto it = plan_->by_meeting.find(contact.meeting_index);
  if (it == plan_->by_meeting.end()) return std::nullopt;
  const auto& transfers = it->second;
  while (cursor_ < transfers.size()) {
    const PlannedTransfer& t = transfers[cursor_];
    ++cursor_;
    if (t.from != self() || t.to != peer.self()) continue;
    if (!buffer().contains(t.packet)) continue;  // plan fragment we never received
    const Packet& p = ctx().packet(t.packet);
    if (peer.has_received(t.packet) || contact_skipped(t.packet, peer.self())) continue;
    // Interleaved sessions rescan the per-meeting list from the top; a relay
    // the peer already holds must not burn budget again.
    if (peer.has_packet(t.packet)) continue;
    if (p.size > contact.remaining) continue;
    return t.packet;
  }
  return std::nullopt;
}

void OptimalRouter::contact_end(const PeerView& peer, Time now) {
  Router::contact_end(peer, now);
  // cursor_ intentionally kept: both directions share the per-meeting list,
  // but each router instance tracks its own position.
}

PacketId OptimalRouter::choose_drop_victim(const Packet& /*incoming*/, Time /*now*/) {
  // The offline plan is computed for unconstrained storage (the paper's ILP
  // has no storage constraint); never evict.
  return kNoPacket;
}

std::shared_ptr<const OptimalPlan> solve_plan(const MeetingSchedule& schedule,
                                              const PacketPool& workload,
                                              const TimeExpandedOptions& options) {
  return std::make_shared<const OptimalPlan>(
      solve_optimal_routing(schedule, workload, options));
}

RouterFactory make_optimal_factory(std::shared_ptr<const OptimalPlan> plan,
                                   Bytes buffer_capacity) {
  return [plan, buffer_capacity](NodeId node, const SimContext& ctx) {
    return std::make_unique<OptimalRouter>(node, buffer_capacity, &ctx, plan);
  };
}

RouterFactory make_optimal_factory(const MeetingSchedule& schedule, const PacketPool& workload,
                                   Bytes buffer_capacity, const TimeExpandedOptions& options) {
  return make_optimal_factory(solve_plan(schedule, workload, options), buffer_capacity);
}

}  // namespace rapid
