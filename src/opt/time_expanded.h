// Time-expanded routing ILP (paper Appendix D, arc-flow form).
//
// The schedule is expanded into a DAG: node (bus, slot) is the state of a
// bus just before its slot-th meeting; hold arcs connect consecutive slots;
// each meeting contributes one transfer arc per direction. Every packet is
// one unit of flow injected at its source's first slot after creation.
// Delivery is rewarded on arcs entering the packet's destination with weight
// (duration - t_meeting), so maximizing the reward minimizes total delay
// with undelivered packets charged their full residence time — exactly the
// paper's ILP objective. Transfer arcs are binary; per-meeting capacity
// couples the packets ("bandwidth constraint").
#pragma once

#include <unordered_map>
#include <vector>

#include "dtn/packet.h"
#include "dtn/schedule.h"
#include "opt/ilp.h"

namespace rapid {

struct PlannedTransfer {
  PacketId packet = kNoPacket;
  NodeId from = kNoNode;
  NodeId to = kNoNode;
};

struct OptimalPlan {
  // Transfers to execute at each meeting (indexed by schedule position).
  std::unordered_map<int, std::vector<PlannedTransfer>> by_meeting;
  double objective = 0;       // total savings (see header comment)
  bool proven_optimal = false;
  int delivered = 0;          // deliveries the plan achieves
  double total_delay = 0;     // ILP objective converted to delay-with-undelivered
};

struct TimeExpandedOptions {
  IlpOptions ilp;
};

// Solves the routing ILP for the given day. Intended for small instances
// (Fig 13 restricts itself to low loads for the same reason the paper does).
OptimalPlan solve_optimal_routing(const MeetingSchedule& schedule, const PacketPool& workload,
                                  const TimeExpandedOptions& options = {});

}  // namespace rapid
