#include "opt/simplex.h"

#include <cmath>
#include <stdexcept>

namespace rapid {

int LinearProgram::add_variable(double objective_coeff) {
  objective.push_back(objective_coeff);
  for (Constraint& c : constraints) c.coeffs.push_back(0.0);
  return num_vars++;
}

void LinearProgram::add_constraint(const std::vector<std::pair<int, double>>& terms,
                                   Relation rel, double rhs) {
  Constraint c;
  c.coeffs.assign(static_cast<std::size_t>(num_vars), 0.0);
  for (const auto& [var, coeff] : terms) {
    if (var < 0 || var >= num_vars)
      throw std::out_of_range("LinearProgram::add_constraint: bad variable");
    c.coeffs[static_cast<std::size_t>(var)] += coeff;
  }
  c.relation = rel;
  c.rhs = rhs;
  constraints.push_back(std::move(c));
}

namespace {

// Tableau layout: rows = constraints (+ objective row last), columns =
// structural vars | slack/surplus | artificial | rhs.
class Tableau {
 public:
  Tableau(const LinearProgram& lp, const SimplexOptions& options)
      : options_(options), n_(lp.num_vars), m_(static_cast<int>(lp.constraints.size())) {
    // Count slack and artificial columns.
    for (const Constraint& c : lp.constraints) {
      if (c.relation != Relation::kEq) ++num_slack_;
    }
    for (const Constraint& c : lp.constraints) {
      // >= rows and = rows need artificials; <= rows with negative rhs are
      // normalized first, so count after normalization below.
      (void)c;
    }
    cols_ = n_ + num_slack_;  // artificials appended later
    rows_.assign(static_cast<std::size_t>(m_), {});
    basis_.assign(static_cast<std::size_t>(m_), -1);

    int slack_index = 0;
    std::vector<int> needs_artificial;
    for (int i = 0; i < m_; ++i) {
      Constraint c = lp.constraints[static_cast<std::size_t>(i)];
      // Normalize to rhs >= 0.
      double sign = 1.0;
      if (c.rhs < 0) {
        sign = -1.0;
        c.rhs = -c.rhs;
        for (double& v : c.coeffs) v = -v;
        if (c.relation == Relation::kLe) c.relation = Relation::kGe;
        else if (c.relation == Relation::kGe) c.relation = Relation::kLe;
      }
      (void)sign;
      auto& row = rows_[static_cast<std::size_t>(i)];
      row.assign(static_cast<std::size_t>(cols_) + 1, 0.0);
      for (int j = 0; j < n_; ++j) row[static_cast<std::size_t>(j)] = c.coeffs[static_cast<std::size_t>(j)];
      row[static_cast<std::size_t>(cols_)] = c.rhs;

      if (c.relation == Relation::kLe) {
        row[static_cast<std::size_t>(n_ + slack_index)] = 1.0;
        basis_[static_cast<std::size_t>(i)] = n_ + slack_index;
        ++slack_index;
      } else if (c.relation == Relation::kGe) {
        row[static_cast<std::size_t>(n_ + slack_index)] = -1.0;
        ++slack_index;
        needs_artificial.push_back(i);
      } else {
        needs_artificial.push_back(i);
      }
    }

    // Append artificial columns.
    num_artificial_ = static_cast<int>(needs_artificial.size());
    const int total = cols_ + num_artificial_;
    for (auto& row : rows_) {
      row.insert(row.end() - 1, static_cast<std::size_t>(num_artificial_), 0.0);
    }
    for (int k = 0; k < num_artificial_; ++k) {
      const int i = needs_artificial[static_cast<std::size_t>(k)];
      rows_[static_cast<std::size_t>(i)][static_cast<std::size_t>(cols_ + k)] = 1.0;
      basis_[static_cast<std::size_t>(i)] = cols_ + k;
    }
    cols_ = total;
  }

  LpSolution solve(const LinearProgram& lp) {
    LpSolution solution;

    // Phase 1: minimize sum of artificials (maximize the negative).
    if (num_artificial_ > 0) {
      std::vector<double> phase1(static_cast<std::size_t>(cols_), 0.0);
      for (int j = cols_ - num_artificial_; j < cols_; ++j)
        phase1[static_cast<std::size_t>(j)] = -1.0;
      build_objective(phase1);
      const LpStatus status = run();
      if (status == LpStatus::kIterationLimit) {
        solution.status = status;
        return solution;
      }
      if (objective_value() < -options_.eps) {
        solution.status = LpStatus::kInfeasible;
        return solution;
      }
      // Drive any artificial still in the basis out (degenerate rows).
      for (int i = 0; i < m_; ++i) {
        if (basis_[static_cast<std::size_t>(i)] < cols_ - num_artificial_) continue;
        bool pivoted = false;
        for (int j = 0; j < cols_ - num_artificial_ && !pivoted; ++j) {
          if (std::fabs(rows_[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)]) >
              options_.eps) {
            pivot(i, j);
            pivoted = true;
          }
        }
        // A row with no pivotable column is all-zero: redundant; leave it.
      }
    }

    // Phase 2: original objective (artificial columns pinned to zero by
    // never selecting them as entering columns).
    std::vector<double> phase2(static_cast<std::size_t>(cols_), 0.0);
    for (int j = 0; j < n_; ++j)
      phase2[static_cast<std::size_t>(j)] = lp.objective[static_cast<std::size_t>(j)];
    build_objective(phase2);
    forbid_artificials_ = true;
    const LpStatus status = run();
    solution.status = status;
    if (status != LpStatus::kOptimal) return solution;

    solution.x.assign(static_cast<std::size_t>(n_), 0.0);
    for (int i = 0; i < m_; ++i) {
      const int b = basis_[static_cast<std::size_t>(i)];
      if (b >= 0 && b < n_)
        solution.x[static_cast<std::size_t>(b)] =
            rows_[static_cast<std::size_t>(i)][static_cast<std::size_t>(cols_)];
    }
    solution.objective = 0;
    for (int j = 0; j < n_; ++j)
      solution.objective +=
          lp.objective[static_cast<std::size_t>(j)] * solution.x[static_cast<std::size_t>(j)];
    return solution;
  }

 private:
  SimplexOptions options_;
  int n_;              // structural variables
  int m_;              // constraints
  int cols_ = 0;       // structural + slack + artificial
  int num_slack_ = 0;
  int num_artificial_ = 0;
  bool forbid_artificials_ = false;
  std::vector<std::vector<double>> rows_;  // each row has cols_+1 entries (rhs last)
  std::vector<double> z_;                  // reduced-cost row, cols_+1 entries
  std::vector<int> basis_;

  double objective_value() const { return z_[static_cast<std::size_t>(cols_)]; }

  void build_objective(const std::vector<double>& costs) {
    // z row = costs expressed over the current basis: z_j = c_B B^-1 A_j - c_j.
    z_.assign(static_cast<std::size_t>(cols_) + 1, 0.0);
    for (int j = 0; j < cols_; ++j) z_[static_cast<std::size_t>(j)] = -costs[static_cast<std::size_t>(j)];
    for (int i = 0; i < m_; ++i) {
      const int b = basis_[static_cast<std::size_t>(i)];
      const double cb = costs[static_cast<std::size_t>(b)];
      if (cb == 0.0) continue;
      const auto& row = rows_[static_cast<std::size_t>(i)];
      for (int j = 0; j <= cols_; ++j)
        z_[static_cast<std::size_t>(j)] += cb * row[static_cast<std::size_t>(j)];
    }
  }

  void pivot(int pr, int pc) {
    auto& prow = rows_[static_cast<std::size_t>(pr)];
    const double pivot_value = prow[static_cast<std::size_t>(pc)];
    for (double& v : prow) v /= pivot_value;
    for (int i = 0; i < m_; ++i) {
      if (i == pr) continue;
      auto& row = rows_[static_cast<std::size_t>(i)];
      const double factor = row[static_cast<std::size_t>(pc)];
      if (factor == 0.0) continue;
      for (int j = 0; j <= cols_; ++j)
        row[static_cast<std::size_t>(j)] -= factor * prow[static_cast<std::size_t>(j)];
    }
    const double zfactor = z_[static_cast<std::size_t>(pc)];
    if (zfactor != 0.0) {
      for (int j = 0; j <= cols_; ++j)
        z_[static_cast<std::size_t>(j)] -= zfactor * prow[static_cast<std::size_t>(j)];
    }
    basis_[static_cast<std::size_t>(pr)] = pc;
  }

  LpStatus run() {
    const int limit_col = forbid_artificials_ ? cols_ - num_artificial_ : cols_;
    for (long iter = 0; iter < options_.max_iterations; ++iter) {
      // Bland's rule: smallest-index column with negative reduced cost.
      int pc = -1;
      for (int j = 0; j < limit_col; ++j) {
        if (z_[static_cast<std::size_t>(j)] < -options_.eps) {
          pc = j;
          break;
        }
      }
      if (pc < 0) return LpStatus::kOptimal;

      int pr = -1;
      double best_ratio = 0;
      for (int i = 0; i < m_; ++i) {
        const double a = rows_[static_cast<std::size_t>(i)][static_cast<std::size_t>(pc)];
        if (a <= options_.eps) continue;
        const double ratio =
            rows_[static_cast<std::size_t>(i)][static_cast<std::size_t>(cols_)] / a;
        if (pr < 0 || ratio < best_ratio - options_.eps ||
            (std::fabs(ratio - best_ratio) <= options_.eps &&
             basis_[static_cast<std::size_t>(i)] < basis_[static_cast<std::size_t>(pr)])) {
          pr = i;
          best_ratio = ratio;
        }
      }
      if (pr < 0) return LpStatus::kUnbounded;
      pivot(pr, pc);
    }
    return LpStatus::kIterationLimit;
  }
};

}  // namespace

LpSolution solve_lp(const LinearProgram& lp, const SimplexOptions& options) {
  if (lp.objective.size() != static_cast<std::size_t>(lp.num_vars))
    throw std::invalid_argument("solve_lp: objective size mismatch");
  for (const Constraint& c : lp.constraints) {
    if (c.coeffs.size() != static_cast<std::size_t>(lp.num_vars))
      throw std::invalid_argument("solve_lp: constraint width mismatch");
  }
  if (lp.num_vars == 0) {
    LpSolution s;
    s.status = LpStatus::kOptimal;
    return s;
  }
  Tableau tableau(lp, options);
  return tableau.solve(lp);
}

}  // namespace rapid
