#include "opt/ilp.h"

#include <cmath>
#include <stdexcept>
#include <vector>

namespace rapid {
namespace {

struct Node {
  std::vector<std::pair<int, int>> fixings;  // (var, 0 or 1)
};

bool is_integral(double v, double eps) { return std::fabs(v - std::round(v)) <= eps; }

}  // namespace

IlpSolution solve_ilp(const LinearProgram& lp, const std::vector<int>& binary_vars,
                      const IlpOptions& options) {
  for (int v : binary_vars) {
    if (v < 0 || v >= lp.num_vars) throw std::out_of_range("solve_ilp: bad binary var");
  }

  IlpSolution best;
  best.status = LpStatus::kInfeasible;
  bool any_limit_hit = false;

  // DFS with an explicit stack; each node adds x<=1 bounds for all binaries
  // plus its branching fixings.
  std::vector<Node> stack;
  stack.push_back(Node{});
  int explored = 0;

  while (!stack.empty() && explored < options.max_nodes) {
    const Node node = stack.back();
    stack.pop_back();
    ++explored;

    LinearProgram sub = lp;
    for (int v : binary_vars) {
      sub.add_constraint({{v, 1.0}}, Relation::kLe, 1.0);
    }
    for (const auto& [var, value] : node.fixings) {
      sub.add_constraint({{var, 1.0}}, Relation::kEq, static_cast<double>(value));
    }

    const LpSolution relax = solve_lp(sub, options.lp);
    if (relax.status == LpStatus::kIterationLimit) {
      any_limit_hit = true;
      continue;
    }
    if (relax.status != LpStatus::kOptimal) continue;  // infeasible branch
    if (best.status == LpStatus::kOptimal &&
        relax.objective <= best.objective + options.integrality_eps)
      continue;  // bound

    // Most-fractional branching variable.
    int branch_var = -1;
    double worst = options.integrality_eps;
    for (int v : binary_vars) {
      const double value = relax.x[static_cast<std::size_t>(v)];
      const double frac = std::fabs(value - std::round(value));
      if (frac > worst) {
        worst = frac;
        branch_var = v;
      }
    }
    if (branch_var < 0) {
      // Integral: candidate incumbent.
      if (best.status != LpStatus::kOptimal || relax.objective > best.objective) {
        best.status = LpStatus::kOptimal;
        best.objective = relax.objective;
        best.x = relax.x;
        for (int v : binary_vars) {
          auto& value = best.x[static_cast<std::size_t>(v)];
          value = std::round(value);
        }
      }
      continue;
    }

    Node zero = node;
    zero.fixings.emplace_back(branch_var, 0);
    Node one = node;
    one.fixings.emplace_back(branch_var, 1);
    // Explore the rounded-up branch first (delivery-maximizing instincts).
    stack.push_back(std::move(zero));
    stack.push_back(std::move(one));
  }

  best.nodes_explored = explored;
  best.proven_optimal =
      best.status == LpStatus::kOptimal && stack.empty() && !any_limit_hit;
  for (double& v : best.x) {
    if (is_integral(v, options.integrality_eps)) v = std::round(v);
  }
  return best;
}

}  // namespace rapid
