// Dense two-phase primal simplex.
//
// Solves  maximize c·x  subject to  A x {<=,=,>=} b,  x >= 0.
// Bland's rule guards against cycling. This is the in-house replacement for
// the CPLEX solver the paper uses for its ILP experiments (§6.2.4); the
// instances Fig 13 needs are small (hundreds of variables), where a dense
// tableau is simple and entirely adequate.
#pragma once

#include <vector>

namespace rapid {

enum class Relation { kLe, kEq, kGe };

struct Constraint {
  std::vector<double> coeffs;  // dense, size = num_vars
  Relation relation = Relation::kLe;
  double rhs = 0;
};

struct LinearProgram {
  int num_vars = 0;
  std::vector<double> objective;  // maximize objective·x
  std::vector<Constraint> constraints;

  // Convenience builders.
  int add_variable(double objective_coeff);
  void add_constraint(const std::vector<std::pair<int, double>>& terms, Relation rel,
                      double rhs);
};

enum class LpStatus { kOptimal, kInfeasible, kUnbounded, kIterationLimit };

struct LpSolution {
  LpStatus status = LpStatus::kInfeasible;
  double objective = 0;
  std::vector<double> x;
};

struct SimplexOptions {
  double eps = 1e-9;
  long max_iterations = 200000;
};

LpSolution solve_lp(const LinearProgram& lp, const SimplexOptions& options = {});

}  // namespace rapid
