#include "opt/time_expanded.h"

#include <algorithm>
#include <stdexcept>

namespace rapid {
namespace {

struct TransferArcVar {
  int var = -1;          // LP variable index
  int meeting_index = -1;
  NodeId from = kNoNode;
  NodeId to = kNoNode;
};

}  // namespace

OptimalPlan solve_optimal_routing(const MeetingSchedule& schedule, const PacketPool& workload,
                                  const TimeExpandedOptions& options) {
  if (!schedule.is_sorted())
    throw std::invalid_argument("solve_optimal_routing: schedule must be sorted");

  const int num_nodes = schedule.num_nodes;
  const auto& meetings = schedule.meetings();

  // Per-bus meeting slots: slots[b] = indexes of meetings involving b, in
  // time order. Node (b, i) = bus b before its i-th meeting; (b, k_b) = day end.
  std::vector<std::vector<int>> slots(static_cast<std::size_t>(num_nodes));
  // slot_of[m] = (slot index within a's list, slot index within b's list).
  std::vector<std::pair<int, int>> slot_of(meetings.size());
  for (std::size_t m = 0; m < meetings.size(); ++m) {
    auto& sa = slots[static_cast<std::size_t>(meetings[m].a)];
    auto& sb = slots[static_cast<std::size_t>(meetings[m].b)];
    slot_of[m] = {static_cast<int>(sa.size()), static_cast<int>(sb.size())};
    sa.push_back(static_cast<int>(m));
    sb.push_back(static_cast<int>(m));
  }

  LinearProgram lp;
  std::vector<int> binary_vars;
  // Per packet: transfer-arc variables and hold-arc variables.
  std::vector<std::vector<TransferArcVar>> transfer_vars(workload.size());
  // hold_var[p][(bus, slot)] -> variable for hold arc (bus, slot)->(bus, slot+1).
  std::vector<std::unordered_map<std::int64_t, int>> hold_vars(workload.size());
  const auto hold_key = [num_nodes](NodeId bus, int slot) {
    return static_cast<std::int64_t>(slot) * num_nodes + bus;
  };

  const double duration = schedule.duration;

  for (const Packet& p : workload.all()) {
    const auto pid = static_cast<std::size_t>(p.id);
    // Source slot: first meeting of src at or after creation.
    const auto& src_slots = slots[static_cast<std::size_t>(p.src)];
    int src_slot = static_cast<int>(src_slots.size());
    for (std::size_t i = 0; i < src_slots.size(); ++i) {
      if (meetings[static_cast<std::size_t>(src_slots[i])].time >= p.created) {
        src_slot = static_cast<int>(i);
        break;
      }
    }
    (void)src_slot;

    // Transfer-arc variables: both directions of every meeting at or after
    // creation; the destination never forwards the packet on.
    for (std::size_t m = 0; m < meetings.size(); ++m) {
      const Meeting& meet = meetings[m];
      if (meet.time < p.created) continue;
      if (meet.capacity < p.size) continue;
      const double reward_a_to_b = meet.b == p.dst ? (duration - meet.time) + 1.0 : 0.0;
      const double reward_b_to_a = meet.a == p.dst ? (duration - meet.time) + 1.0 : 0.0;
      if (meet.a != p.dst) {
        TransferArcVar arc;
        arc.var = lp.add_variable(reward_a_to_b);
        arc.meeting_index = static_cast<int>(m);
        arc.from = meet.a;
        arc.to = meet.b;
        transfer_vars[pid].push_back(arc);
        binary_vars.push_back(arc.var);
      }
      if (meet.b != p.dst) {
        TransferArcVar arc;
        arc.var = lp.add_variable(reward_b_to_a);
        arc.meeting_index = static_cast<int>(m);
        arc.from = meet.b;
        arc.to = meet.a;
        transfer_vars[pid].push_back(arc);
        binary_vars.push_back(arc.var);
      }
    }
    // Hold-arc variables (continuous; integrality follows from transfers).
    for (NodeId bus = 0; bus < num_nodes; ++bus) {
      const int k = static_cast<int>(slots[static_cast<std::size_t>(bus)].size());
      for (int s = 0; s < k; ++s) {
        hold_vars[pid].emplace(hold_key(bus, s), lp.add_variable(0.0));
      }
    }
  }

  // Conservation constraints per (packet, bus, slot). Terminal slots absorb.
  for (const Packet& p : workload.all()) {
    const auto pid = static_cast<std::size_t>(p.id);

    // In/out terms per (bus, slot) node.
    // out: hold (bus,s) and transfer arcs whose tail is (bus,s);
    // in: hold (bus,s-1) and transfer arcs whose head is (bus,s).
    const auto& src_slots = slots[static_cast<std::size_t>(p.src)];
    int src_slot = static_cast<int>(src_slots.size());
    for (std::size_t i = 0; i < src_slots.size(); ++i) {
      if (meetings[static_cast<std::size_t>(src_slots[i])].time >= p.created) {
        src_slot = static_cast<int>(i);
        break;
      }
    }

    for (NodeId bus = 0; bus < num_nodes; ++bus) {
      const int k = static_cast<int>(slots[static_cast<std::size_t>(bus)].size());
      for (int s = 0; s < k; ++s) {  // terminal node (bus, k) has no constraint
        std::vector<std::pair<int, double>> terms;
        // Out: hold arc.
        terms.emplace_back(hold_vars[pid].at(hold_key(bus, s)), 1.0);
        // Out/in: transfer arcs at this bus's slot-s meeting.
        const int m = slots[static_cast<std::size_t>(bus)][static_cast<std::size_t>(s)];
        for (const TransferArcVar& arc : transfer_vars[pid]) {
          if (arc.meeting_index != m) continue;
          if (arc.from == bus) terms.emplace_back(arc.var, 1.0);   // out
          if (arc.to == bus) {
            // Arrives *after* the meeting: feeds node (bus, s+1), i.e. it is
            // an "in" for the next slot; handled below via s-1 indexing.
          }
        }
        // In: hold arc from previous slot.
        if (s > 0) terms.emplace_back(hold_vars[pid].at(hold_key(bus, s - 1)), -1.0);
        // In: transfer arcs that arrived at this bus's previous meeting.
        if (s > 0) {
          const int prev_m =
              slots[static_cast<std::size_t>(bus)][static_cast<std::size_t>(s - 1)];
          for (const TransferArcVar& arc : transfer_vars[pid]) {
            if (arc.meeting_index == prev_m && arc.to == bus)
              terms.emplace_back(arc.var, -1.0);
          }
        }
        const double rhs = (bus == p.src && s == src_slot) ? 1.0 : 0.0;
        lp.add_constraint(terms, Relation::kEq, rhs);
      }
    }
  }

  // Capacity per meeting: total transferred bytes within the opportunity.
  for (std::size_t m = 0; m < meetings.size(); ++m) {
    std::vector<std::pair<int, double>> terms;
    for (const Packet& p : workload.all()) {
      for (const TransferArcVar& arc : transfer_vars[static_cast<std::size_t>(p.id)]) {
        if (arc.meeting_index == static_cast<int>(m))
          terms.emplace_back(arc.var, static_cast<double>(p.size));
      }
    }
    if (!terms.empty())
      lp.add_constraint(terms, Relation::kLe, static_cast<double>(meetings[m].capacity));
  }

  const IlpSolution solution = solve_ilp(lp, binary_vars, options.ilp);

  OptimalPlan plan;
  plan.proven_optimal = solution.proven_optimal;
  plan.objective = solution.objective;
  if (solution.status != LpStatus::kOptimal) return plan;

  // Extract per-packet paths by walking selected transfer arcs in time order.
  double total_delay = 0;
  for (const Packet& p : workload.all()) {
    const auto pid = static_cast<std::size_t>(p.id);
    std::vector<TransferArcVar> chosen;
    for (const TransferArcVar& arc : transfer_vars[pid]) {
      if (solution.x[static_cast<std::size_t>(arc.var)] > 0.5) chosen.push_back(arc);
    }
    std::sort(chosen.begin(), chosen.end(), [](const TransferArcVar& a, const TransferArcVar& b) {
      return a.meeting_index < b.meeting_index;
    });
    NodeId at = p.src;
    bool delivered = false;
    for (const TransferArcVar& arc : chosen) {
      if (arc.from != at) continue;  // defensive: skip inconsistent fragments
      plan.by_meeting[arc.meeting_index].push_back(PlannedTransfer{p.id, arc.from, arc.to});
      at = arc.to;
      if (at == p.dst) {
        delivered = true;
        total_delay +=
            meetings[static_cast<std::size_t>(arc.meeting_index)].time - p.created;
        break;
      }
    }
    if (delivered) ++plan.delivered;
    else total_delay += duration - p.created;
  }
  plan.total_delay = total_delay;
  return plan;
}

}  // namespace rapid
