// Offline Optimal router (§6.2.4): solves the Appendix D ILP for the whole
// day up front, then replays the planned transfers through the normal
// contact machinery. Provides the upper bound Fig 13 compares against.
#pragma once

#include <memory>
#include <optional>

#include "dtn/router.h"
#include "opt/time_expanded.h"

namespace rapid {

class OptimalRouter : public Router {
 public:
  OptimalRouter(NodeId self, Bytes buffer_capacity, const SimContext* ctx,
                std::shared_ptr<const OptimalPlan> plan);

  std::optional<PacketId> next_transfer(const ContactContext& contact, const PeerView& peer) override;
  void contact_end(const PeerView& peer, Time now) override;
  PacketId choose_drop_victim(const Packet& incoming, Time now) override;

 private:
  std::shared_ptr<const OptimalPlan> plan_;
  int active_meeting_ = -1;
  std::size_t cursor_ = 0;
};

// Solves the plan once and shares it across all node routers.
RouterFactory make_optimal_factory(const MeetingSchedule& schedule, const PacketPool& workload,
                                   Bytes buffer_capacity,
                                   const TimeExpandedOptions& options = {});

// Access to the plan itself (benches report proven_optimal / delay).
std::shared_ptr<const OptimalPlan> solve_plan(const MeetingSchedule& schedule,
                                              const PacketPool& workload,
                                              const TimeExpandedOptions& options = {});
RouterFactory make_optimal_factory(std::shared_ptr<const OptimalPlan> plan,
                                   Bytes buffer_capacity);

}  // namespace rapid
