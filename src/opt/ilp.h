// Branch-and-bound 0/1 integer programming over the simplex LP relaxation.
// Sufficient for the time-expanded routing ILPs of Appendix D, whose LP
// relaxations are near-integral multicommodity flows.
#pragma once

#include <vector>

#include "opt/simplex.h"

namespace rapid {

struct IlpOptions {
  SimplexOptions lp;
  int max_nodes = 5000;          // branch-and-bound node budget
  double integrality_eps = 1e-6;
};

struct IlpSolution {
  LpStatus status = LpStatus::kInfeasible;  // kOptimal = proven optimal
  bool proven_optimal = false;
  double objective = 0;
  std::vector<double> x;
  int nodes_explored = 0;
};

// Maximizes lp.objective with the listed variables restricted to {0, 1}
// (they must also carry x <= 1 bounds or semantics that imply them; the
// solver adds the 0/1 branching cuts itself). Variables not listed stay
// continuous.
IlpSolution solve_ilp(const LinearProgram& lp, const std::vector<int>& binary_vars,
                      const IlpOptions& options = {});

}  // namespace rapid
