// PRoPHET [Lindgren et al. 2004] with the paper's parameters (§6.1):
// P_init = 0.75, beta = 0.25, gamma = 0.98.
//
// Each node maintains delivery predictabilities P(self, d):
//   on meeting d:     P = P + (1 - P) * P_init
//   aging:            P = P * gamma^(elapsed / aging_unit)
//   transitivity:     P(self, d) = max(P, P(self, peer) * P(peer, d) * beta)
// A copy is replicated to the peer when the peer's predictability for the
// destination exceeds ours (GRTR). Lowest-predictability packets are dropped
// first under storage pressure.
#pragma once

#include <optional>
#include <vector>

#include "dtn/age_order.h"
#include "dtn/router.h"

namespace rapid {

struct ProphetConfig {
  double p_init = 0.75;
  double beta = 0.25;
  double gamma = 0.98;
  // Seconds per aging time unit; scenario-dependent (the protocol paper
  // leaves it deployment-defined). The harness sets it per mobility model.
  double aging_unit = 60.0;
};

class ProphetRouter : public Router {
 public:
  ProphetRouter(NodeId self, Bytes buffer_capacity, const SimContext* ctx,
                const ProphetConfig& config);

  bool on_generate(const Packet& p) override;
  Bytes contact_begin(const PeerView& peer, Time now, Bytes meta_budget) override;
  std::optional<PacketId> next_transfer(const ContactContext& contact, const PeerView& peer) override;
  PacketId choose_drop_victim(const Packet& incoming, Time now) override;

  // Aged predictability towards `dst` as of `now`.
  double predictability(NodeId dst, Time now) const;

  // Snapshot/restore: predictability vector and its aging clock; the age
  // order is rebuilt from the restored buffer (it is canonical).
  void save_state(BinWriter& out) override;
  void load_state(BinReader& in) override;

 protected:
  void on_stored(const Packet& p, NodeId from, std::int64_t aux, Time now) override;
  void on_dropped(const Packet& p, Time now) override;
  void on_acked(const Packet& p, Time now) override;

 private:
  ProphetConfig config_;
  mutable std::vector<double> p_;   // predictabilities, aged lazily
  mutable Time last_aged_ = 0;

  // Maintained oldest-first order; the direct tier filters it, the GRTR tier
  // sorts only the admitted forwards (peer-dependent by definition).
  AgeOrder age_order_;
  std::vector<PacketId> direct_order_;
  std::size_t direct_cursor_ = 0;
  std::vector<std::pair<double, PacketId>> forward_order_;  // peer predictability desc
  std::size_t forward_cursor_ = 0;

  void age_to(Time now) const;
  void build_plan(const PeerView& peer, Time now);
};

RouterFactory make_prophet_factory(const ProphetConfig& config, Bytes buffer_capacity);

}  // namespace rapid
