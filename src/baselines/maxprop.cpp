#include "baselines/maxprop.h"

#include <algorithm>

#include "util/slab.h"
#include <limits>
#include <queue>

#include "core/metadata.h"  // wire-size constants
#include "util/binio.h"

namespace rapid {

MaxPropRouter::MaxPropRouter(NodeId self, Bytes buffer_capacity, const SimContext* ctx,
                             const MaxPropConfig& config)
    : Router(self, buffer_capacity, ctx), config_(config) {
  const auto n = static_cast<std::size_t>(ctx->num_nodes);
  const double uniform = n > 1 ? 1.0 / static_cast<double>(n - 1) : 0.0;
  f_.assign(n, std::vector<double>(n, uniform));
  for (std::size_t u = 0; u < n; ++u) f_[u][u] = 0.0;
  f_stamp_.assign(n, -kTimeInfinity);
}

void MaxPropRouter::set_hops(PacketId id, int hops) {
  grow_slot(hops_, id, std::int32_t{0}) = hops;
}

bool MaxPropRouter::on_generate(const Packet& p) {
  if (!Router::on_generate(p)) return false;
  set_hops(p.id, 0);
  priority_dirty_ = true;
  return true;
}

void MaxPropRouter::on_stored(const Packet& p, NodeId /*from*/, std::int64_t aux,
                              Time /*now*/) {
  set_hops(p.id, static_cast<int>(std::max<std::int64_t>(0, aux)));
  priority_dirty_ = true;
}

void MaxPropRouter::on_dropped(const Packet& p, Time /*now*/) {
  set_hops(p.id, 0);
  priority_dirty_ = true;
}

void MaxPropRouter::on_acked(const Packet& p, Time /*now*/) {
  set_hops(p.id, 0);
  priority_dirty_ = true;
}

int MaxPropRouter::hop_count(PacketId id) const {
  return static_cast<std::size_t>(id) < hops_.size()
             ? hops_[static_cast<std::size_t>(id)]
             : 0;
}

void MaxPropRouter::observe_opportunity(Bytes capacity, NodeId /*peer*/, Time /*now*/) {
  ++transfers_seen_;
  avg_transfer_bytes_ +=
      (static_cast<double>(capacity) - avg_transfer_bytes_) / static_cast<double>(transfers_seen_);
  priority_dirty_ = true;  // head-start threshold moved
}

void MaxPropRouter::normalize_own() {
  auto& own = f_[static_cast<std::size_t>(self())];
  double total = 0;
  for (double v : own) total += v;
  if (total <= 0) return;
  for (double& v : own) v /= total;
}

double MaxPropRouter::meeting_likelihood(NodeId peer) const {
  return f_[static_cast<std::size_t>(self())][static_cast<std::size_t>(peer)];
}

Bytes MaxPropRouter::contact_begin(const PeerView& peer, Time now, Bytes meta_budget) {
  Router::contact_begin(peer, now, meta_budget);

  // Incremental averaging: bump the peer's likelihood, re-normalize.
  f_[static_cast<std::size_t>(self())][static_cast<std::size_t>(peer.self())] += 1.0;
  normalize_own();
  f_stamp_[static_cast<std::size_t>(self())] = now;
  costs_dirty_ = true;
  priority_dirty_ = true;

  Bytes used = 0;
  auto* mp = peer.as<MaxPropRouter>();
  if (mp != nullptr) {
    // Ship every vector the peer has staler knowledge of (route messages).
    for (std::size_t u = 0; u < f_.size(); ++u) {
      if (f_stamp_[u] <= mp->f_stamp_[u]) continue;
      const Bytes cost =
          kMeetingRowHeaderBytes + kMeetingRowEntryBytes * static_cast<Bytes>(f_.size());
      if (used + cost > meta_budget) break;
      used += cost;
      mp->f_[u] = f_[u];
      mp->f_stamp_[u] = f_stamp_[u];
      mp->costs_dirty_ = true;
      mp->priority_dirty_ = true;
    }
  }
  // Flooded delivery acknowledgments.
  used += exchange_acks(peer, now);
  return std::min(used, meta_budget);
}

void MaxPropRouter::recompute_costs() const {
  const auto n = f_.size();
  cost_cache_.assign(n, std::numeric_limits<double>::infinity());
  using Item = std::pair<double, std::size_t>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  const auto src = static_cast<std::size_t>(self());
  cost_cache_[src] = 0;
  heap.emplace(0.0, src);
  while (!heap.empty()) {
    const auto [dist, u] = heap.top();
    heap.pop();
    if (dist > cost_cache_[u]) continue;
    for (std::size_t v = 0; v < n; ++v) {
      if (v == u) continue;
      const double w = 1.0 - std::min(1.0, std::max(0.0, f_[u][v]));
      const double cand = dist + w;
      if (cand < cost_cache_[v]) {
        cost_cache_[v] = cand;
        heap.emplace(cand, v);
      }
    }
  }
  costs_dirty_ = false;
}

double MaxPropRouter::path_cost(NodeId dst) const {
  if (costs_dirty_) recompute_costs();
  return cost_cache_[static_cast<std::size_t>(dst)];
}

Bytes MaxPropRouter::head_start_bytes() const {
  const double avg = avg_transfer_bytes_;
  if (buffer().capacity() < 0) return static_cast<Bytes>(avg);
  return std::min(static_cast<Bytes>(avg),
                  static_cast<Bytes>(config_.head_start_buffer_fraction *
                                     static_cast<double>(buffer().capacity())));
}

const std::vector<PacketId>& MaxPropRouter::priority_order() const {
  if (!priority_dirty_) return priority_cache_;
  struct Entry {
    PacketId id;
    int hops;
    double cost;
    Bytes size;
  };
  std::vector<Entry> entries;
  entries.reserve(buffer().count());
  buffer().for_each([&](PacketId id, Bytes size) {
    const Packet& p = ctx().packet(id);
    entries.push_back(Entry{id, hop_count(id), path_cost(p.dst), size});
  });
  // Hopcount section first (ascending), then everything by cost (ascending).
  std::sort(entries.begin(), entries.end(), [](const Entry& a, const Entry& b) {
    if (a.hops != b.hops) return a.hops < b.hops;
    return a.cost < b.cost;
  });
  const Bytes head = head_start_bytes();
  Bytes acc = 0;
  std::size_t split = 0;
  while (split < entries.size() && acc + entries[split].size <= head) {
    acc += entries[split].size;
    ++split;
  }
  std::sort(entries.begin() + static_cast<std::ptrdiff_t>(split), entries.end(),
            [](const Entry& a, const Entry& b) { return a.cost < b.cost; });
  priority_cache_.clear();
  priority_cache_.reserve(entries.size());
  for (const Entry& e : entries) priority_cache_.push_back(e.id);
  priority_dirty_ = false;
  return priority_cache_;
}

void MaxPropRouter::build_plan(const PeerView& peer) {
  mark_plan_built(peer.self());
  direct_order_.clear();
  direct_cursor_ = 0;
  send_order_.clear();
  send_cursor_ = 0;
  for (PacketId id : priority_order()) {
    (ctx().packet(id).dst == peer.self() ? direct_order_ : send_order_).push_back(id);
  }
  // Destined-to-peer packets go first regardless of section, oldest first.
  std::sort(direct_order_.begin(), direct_order_.end(), [&](PacketId a, PacketId b) {
    return ctx().packet(a).created < ctx().packet(b).created;
  });
}

std::optional<PacketId> MaxPropRouter::next_transfer(const ContactContext& contact,
                                                     const PeerView& peer) {
  if (!plan_current(peer.self())) build_plan(peer);
  while (direct_cursor_ < direct_order_.size()) {
    const PacketId id = direct_order_[direct_cursor_];
    ++direct_cursor_;
    if (!buffer().contains(id) || peer.has_received(id) ||
        contact_skipped(id, peer.self()))
      continue;
    if (ctx().packet(id).size > contact.remaining) continue;
    return id;
  }
  while (send_cursor_ < send_order_.size()) {
    const PacketId id = send_order_[send_cursor_];
    ++send_cursor_;
    if (!buffer().contains(id)) continue;
    const Packet& p = ctx().packet(id);
    if (!peer_wants(peer, p)) continue;
    if (p.size > contact.remaining) continue;
    return id;
  }
  return std::nullopt;
}

std::int64_t MaxPropRouter::transfer_aux(const Packet& p, const PeerView& /*peer*/) {
  return hop_count(p.id) + 1;
}

void MaxPropRouter::on_transfer_success(const Packet& p, const PeerView& /*peer*/,
                                        ReceiveOutcome outcome, Time now) {
  if (outcome == ReceiveOutcome::kDelivered || outcome == ReceiveOutcome::kDuplicateDelivery)
    learn_ack(p.id, now);
}

PacketId MaxPropRouter::choose_drop_victim(const Packet& /*incoming*/, Time /*now*/) {
  // Drop from the tail of the priority order: the highest-cost packet
  // outside the head-start section goes first.
  const std::vector<PacketId>& order = priority_order();
  if (order.empty()) return kNoPacket;
  return order.back();
}

void MaxPropRouter::save_state(BinWriter& out) {
  Router::save_state(out);
  out.tag("MAXP");
  out.u64(f_.size());
  for (std::size_t u = 0; u < f_.size(); ++u) {
    for (double v : f_[u]) out.f64(v);
    out.f64(f_stamp_[u]);
  }
  std::uint64_t tracked = 0;
  for (std::int32_t h : hops_) tracked += h != 0 ? 1 : 0;
  out.u64(tracked);
  for (std::size_t id = 0; id < hops_.size(); ++id) {
    if (hops_[id] == 0) continue;
    out.i64(static_cast<std::int64_t>(id));
    out.i64(hops_[id]);
  }
  out.f64(avg_transfer_bytes_);
  out.u64(transfers_seen_);
}

void MaxPropRouter::load_state(BinReader& in) {
  Router::load_state(in);
  in.expect_tag("MAXP");
  if (in.u64() != f_.size()) BinReader::fail("maxprop fleet size differs from the snapshot's");
  for (std::size_t u = 0; u < f_.size(); ++u) {
    for (double& v : f_[u]) v = in.f64();
    f_stamp_[u] = in.f64();
  }
  const std::uint64_t tracked = in.u64();
  for (std::uint64_t i = 0; i < tracked; ++i) {
    const PacketId id = static_cast<PacketId>(in.i64());
    set_hops(id, static_cast<int>(in.i64()));
  }
  avg_transfer_bytes_ = in.f64();
  transfers_seen_ = in.u64();
  costs_dirty_ = true;
  priority_dirty_ = true;
}

RouterFactory make_maxprop_factory(const MaxPropConfig& config, Bytes buffer_capacity) {
  return [config, buffer_capacity](NodeId node, const SimContext& ctx) {
    return std::make_unique<MaxPropRouter>(node, buffer_capacity, &ctx, config);
  };
}

}  // namespace rapid
