#include "baselines/random_router.h"

#include <algorithm>

namespace rapid {

RandomRouter::RandomRouter(NodeId self, Bytes buffer_capacity, const SimContext* ctx,
                           const RandomConfig& config)
    : Router(self, buffer_capacity, ctx), config_(config) {}

bool RandomRouter::on_generate(const Packet& p) {
  if (!Router::on_generate(p)) return false;
  age_order_.insert(p.created, p.id);
  return true;
}

void RandomRouter::on_stored(const Packet& p, NodeId /*from*/, std::int64_t /*aux*/,
                             Time /*now*/) {
  age_order_.insert(p.created, p.id);
}

void RandomRouter::on_dropped(const Packet& p, Time /*now*/) {
  age_order_.remove(p.created, p.id);
}

void RandomRouter::on_acked(const Packet& p, Time /*now*/) {
  age_order_.remove(p.created, p.id);
}

Bytes RandomRouter::contact_begin(const PeerView& peer, Time now, Bytes meta_budget) {
  Router::contact_begin(peer, now, meta_budget);
  if (config_.flood_acks) {
    // Ack flooding is this variant's only control traffic; cap at budget.
    const Bytes used = exchange_acks(peer, now);
    return std::min(used, meta_budget);
  }
  return 0;
}

void RandomRouter::build_plan(const PeerView& peer) {
  mark_plan_built(peer.self());
  direct_order_.clear();
  direct_cursor_ = 0;
  shuffled_.clear();
  shuffle_cursor_ = 0;
  // Oldest first for direct delivery straight from the maintained order;
  // uniformly random replication order over the rest.
  for (const auto& [created, id] : age_order_.entries()) {
    (ctx().packet(id).dst == peer.self() ? direct_order_ : shuffled_).push_back(id);
  }
  rng().shuffle(shuffled_);
}

std::optional<PacketId> RandomRouter::next_transfer(const ContactContext& contact,
                                                    const PeerView& peer) {
  if (!plan_current(peer.self())) build_plan(peer);
  while (direct_cursor_ < direct_order_.size()) {
    const PacketId id = direct_order_[direct_cursor_];
    ++direct_cursor_;
    if (!buffer().contains(id) || peer.has_received(id) || contact_skipped(id, peer.self())) continue;
    if (ctx().packet(id).size > contact.remaining) continue;
    return id;
  }
  while (shuffle_cursor_ < shuffled_.size()) {
    const PacketId id = shuffled_[shuffle_cursor_];
    ++shuffle_cursor_;
    if (!buffer().contains(id)) continue;
    const Packet& p = ctx().packet(id);
    if (!peer_wants(peer, p)) continue;
    if (p.size > contact.remaining) continue;
    return id;
  }
  return std::nullopt;
}

void RandomRouter::on_transfer_success(const Packet& p, const PeerView& /*peer*/,
                                       ReceiveOutcome outcome, Time now) {
  if (config_.flood_acks && (outcome == ReceiveOutcome::kDelivered ||
                             outcome == ReceiveOutcome::kDuplicateDelivery)) {
    learn_ack(p.id, now);
  }
}

PacketId RandomRouter::choose_drop_victim(const Packet& /*incoming*/, Time /*now*/) {
  const Span<Buffer::Entry> entries = buffer().entries();
  if (entries.empty()) return kNoPacket;
  return entries[static_cast<std::size_t>(
                     rng().uniform_int(0, static_cast<std::int64_t>(entries.size()) - 1))]
      .id;
}

void RandomRouter::load_state(BinReader& in) {
  Router::load_state(in);
  age_order_.clear();
  buffer().for_each(
      [&](PacketId id, Bytes /*size*/) { age_order_.insert(ctx().packet(id).created, id); });
}

RouterFactory make_random_factory(const RandomConfig& config, Bytes buffer_capacity) {
  return [config, buffer_capacity](NodeId node, const SimContext& ctx) {
    return std::make_unique<RandomRouter>(node, buffer_capacity, &ctx, config);
  };
}

}  // namespace rapid
