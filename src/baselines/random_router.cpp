#include "baselines/random_router.h"

#include <algorithm>

namespace rapid {

RandomRouter::RandomRouter(NodeId self, Bytes buffer_capacity, const SimContext* ctx,
                           const RandomConfig& config)
    : Router(self, buffer_capacity, ctx), config_(config) {}

Bytes RandomRouter::contact_begin(const PeerView& peer, Time now, Bytes meta_budget) {
  Router::contact_begin(peer, now, meta_budget);
  if (config_.flood_acks) {
    // Ack flooding is this variant's only control traffic; cap at budget.
    const Bytes used = exchange_acks(peer, now);
    return std::min(used, meta_budget);
  }
  return 0;
}

void RandomRouter::build_plan(const PeerView& peer) {
  mark_plan_built(peer.self());
  direct_order_.clear();
  direct_cursor_ = 0;
  shuffled_.clear();
  shuffle_cursor_ = 0;
  buffer().for_each([&](PacketId id, Bytes /*size*/) {
    const Packet& p = ctx().packet(id);
    if (p.dst == peer.self()) {
      direct_order_.push_back(id);
    } else {
      shuffled_.push_back(id);
    }
  });
  // Oldest first for direct delivery; uniformly random replication order.
  std::sort(direct_order_.begin(), direct_order_.end(), [&](PacketId a, PacketId b) {
    return ctx().packet(a).created < ctx().packet(b).created;
  });
  rng().shuffle(shuffled_);
}

std::optional<PacketId> RandomRouter::next_transfer(const ContactContext& contact,
                                                    const PeerView& peer) {
  if (!plan_current(peer.self())) build_plan(peer);
  while (direct_cursor_ < direct_order_.size()) {
    const PacketId id = direct_order_[direct_cursor_];
    ++direct_cursor_;
    if (!buffer().contains(id) || peer.has_received(id) || contact_skipped(id, peer.self())) continue;
    if (ctx().packet(id).size > contact.remaining) continue;
    return id;
  }
  while (shuffle_cursor_ < shuffled_.size()) {
    const PacketId id = shuffled_[shuffle_cursor_];
    ++shuffle_cursor_;
    if (!buffer().contains(id)) continue;
    const Packet& p = ctx().packet(id);
    if (!peer_wants(peer, p)) continue;
    if (p.size > contact.remaining) continue;
    return id;
  }
  return std::nullopt;
}

void RandomRouter::on_transfer_success(const Packet& p, const PeerView& /*peer*/,
                                       ReceiveOutcome outcome, Time now) {
  if (config_.flood_acks && (outcome == ReceiveOutcome::kDelivered ||
                             outcome == ReceiveOutcome::kDuplicateDelivery)) {
    learn_ack(p.id, now);
  }
}

PacketId RandomRouter::choose_drop_victim(const Packet& /*incoming*/, Time /*now*/) {
  const std::vector<PacketId> ids = buffer().packet_ids();
  if (ids.empty()) return kNoPacket;
  return ids[static_cast<std::size_t>(
      rng().uniform_int(0, static_cast<std::int64_t>(ids.size()) - 1))];
}

RouterFactory make_random_factory(const RandomConfig& config, Bytes buffer_capacity) {
  return [config, buffer_capacity](NodeId node, const SimContext& ctx) {
    return std::make_unique<RandomRouter>(node, buffer_capacity, &ctx, config);
  };
}

}  // namespace rapid
