#include "baselines/epidemic.h"

#include <algorithm>

#include "util/binio.h"
#include "util/slab.h"

namespace rapid {

EpidemicRouter::EpidemicRouter(NodeId self, Bytes buffer_capacity, const SimContext* ctx,
                               const EpidemicConfig& config)
    : Router(self, buffer_capacity, ctx), config_(config) {}

void EpidemicRouter::note_arrival(PacketId id) {
  grow_slot(arrival_, id, std::uint64_t{0}) = arrival_seq_++;
}

bool EpidemicRouter::on_generate(const Packet& p) {
  if (!Router::on_generate(p)) return false;
  note_arrival(p.id);
  age_order_.insert(p.created, p.id);
  return true;
}

void EpidemicRouter::on_stored(const Packet& p, NodeId /*from*/, std::int64_t /*aux*/,
                               Time /*now*/) {
  note_arrival(p.id);
  age_order_.insert(p.created, p.id);
}

void EpidemicRouter::on_dropped(const Packet& p, Time /*now*/) {
  age_order_.remove(p.created, p.id);
}

void EpidemicRouter::on_acked(const Packet& p, Time /*now*/) {
  age_order_.remove(p.created, p.id);
}

Bytes EpidemicRouter::contact_begin(const PeerView& peer, Time now, Bytes meta_budget) {
  Router::contact_begin(peer, now, meta_budget);
  if (config_.flood_acks) return std::min(exchange_acks(peer, now), meta_budget);
  return 0;
}

void EpidemicRouter::build_plan(const PeerView& peer) {
  mark_plan_built(peer.self());
  order_.clear();
  cursor_ = 0;
  // The maintained order is already oldest-first; one linear pass splits it
  // into the destined-to-peer tier and the replication tier.
  const auto& aged = age_order_.entries();
  order_.reserve(aged.size());
  for (const auto& [created, id] : aged)
    if (ctx().packet(id).dst == peer.self()) order_.push_back(id);
  for (const auto& [created, id] : aged)
    if (ctx().packet(id).dst != peer.self()) order_.push_back(id);
}

std::optional<PacketId> EpidemicRouter::next_transfer(const ContactContext& contact,
                                                      const PeerView& peer) {
  if (!plan_current(peer.self())) build_plan(peer);
  while (cursor_ < order_.size()) {
    const PacketId id = order_[cursor_];
    ++cursor_;
    if (!buffer().contains(id)) continue;
    const Packet& p = ctx().packet(id);
    if (p.dst == peer.self()) {
      if (peer.has_received(id) || contact_skipped(id, peer.self())) continue;
    } else if (!peer_wants(peer, p)) {
      continue;
    }
    if (p.size > contact.remaining) continue;
    return id;
  }
  return std::nullopt;
}

void EpidemicRouter::on_transfer_success(const Packet& p, const PeerView& /*peer*/,
                                         ReceiveOutcome outcome, Time now) {
  if (config_.flood_acks && (outcome == ReceiveOutcome::kDelivered ||
                             outcome == ReceiveOutcome::kDuplicateDelivery)) {
    learn_ack(p.id, now);
  }
}

PacketId EpidemicRouter::choose_drop_victim(const Packet& /*incoming*/, Time /*now*/) {
  // FIFO: drop the copy that has been on board the longest.
  PacketId victim = kNoPacket;
  std::uint64_t oldest = 0;
  buffer().for_each([&](PacketId id, Bytes /*size*/) {
    const std::uint64_t seq = static_cast<std::size_t>(id) < arrival_.size()
                                  ? arrival_[static_cast<std::size_t>(id)]
                                  : 0;
    if (victim == kNoPacket || seq < oldest) {
      victim = id;
      oldest = seq;
    }
  });
  return victim;
}

void EpidemicRouter::save_state(BinWriter& out) {
  Router::save_state(out);
  out.tag("EPID");
  out.u64(arrival_seq_);
  // Arrival sequence numbers matter only for packets still on board (the
  // FIFO victim scan reads nothing else; re-storing reassigns).
  out.u64(buffer().count());
  buffer().for_each([&](PacketId id, Bytes /*size*/) {
    out.i64(id);
    out.u64(static_cast<std::size_t>(id) < arrival_.size()
                ? arrival_[static_cast<std::size_t>(id)]
                : 0);
  });
}

void EpidemicRouter::load_state(BinReader& in) {
  Router::load_state(in);
  in.expect_tag("EPID");
  arrival_seq_ = in.u64();
  const std::uint64_t buffered = in.u64();
  for (std::uint64_t i = 0; i < buffered; ++i) {
    const PacketId id = static_cast<PacketId>(in.i64());
    grow_slot(arrival_, id, std::uint64_t{0}) = in.u64();
  }
  age_order_.clear();
  buffer().for_each(
      [&](PacketId id, Bytes /*size*/) { age_order_.insert(ctx().packet(id).created, id); });
}

RouterFactory make_epidemic_factory(const EpidemicConfig& config, Bytes buffer_capacity) {
  return [config, buffer_capacity](NodeId node, const SimContext& ctx) {
    return std::make_unique<EpidemicRouter>(node, buffer_capacity, &ctx, config);
  };
}

}  // namespace rapid
