// Random replication (§6.1): "replicates randomly chosen packets for the
// duration of the transfer opportunity." Packets destined to the peer are
// delivered first (all compared protocols do direct delivery).
//
// The `flood_acks` variant is the Fig 14 ablation "Random with acks":
// delivery acknowledgments propagate at every contact and purge delivered
// copies from buffers.
#pragma once

#include <optional>
#include <vector>

#include "dtn/age_order.h"
#include "dtn/router.h"

namespace rapid {

struct RandomConfig {
  bool flood_acks = false;
};

class RandomRouter : public Router {
 public:
  RandomRouter(NodeId self, Bytes buffer_capacity, const SimContext* ctx,
               const RandomConfig& config);

  bool on_generate(const Packet& p) override;
  Bytes contact_begin(const PeerView& peer, Time now, Bytes meta_budget) override;
  std::optional<PacketId> next_transfer(const ContactContext& contact, const PeerView& peer) override;
  void on_transfer_success(const Packet& p, const PeerView& peer, ReceiveOutcome outcome,
                           Time now) override;
  PacketId choose_drop_victim(const Packet& incoming, Time now) override;

  // No state beyond the base router's; the age order is rebuilt from the
  // restored buffer (it is canonical).
  void load_state(BinReader& in) override;

 protected:
  void on_stored(const Packet& p, NodeId from, std::int64_t aux, Time now) override;
  void on_dropped(const Packet& p, Time now) override;
  void on_acked(const Packet& p, Time now) override;

 private:
  RandomConfig config_;
  // Maintained oldest-first order: the direct tier reads it as-is; the
  // replication tier shuffles a filtered copy (the shuffle IS the protocol,
  // so that part stays per-contact).
  AgeOrder age_order_;
  std::vector<PacketId> direct_order_;
  std::size_t direct_cursor_ = 0;
  std::vector<PacketId> shuffled_;
  std::size_t shuffle_cursor_ = 0;

  void build_plan(const PeerView& peer);
};

RouterFactory make_random_factory(const RandomConfig& config, Bytes buffer_capacity);

}  // namespace rapid
