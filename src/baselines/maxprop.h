// MaxProp [Burgess et al., Infocom 2006] — the paper's strongest baseline
// (§6.1) and its predecessor on DieselNet.
//
//   * Each node i keeps meeting likelihoods f^i_j, initialized uniform; on
//     meeting j, f^i_j is incremented and the vector re-normalized
//     (incremental averaging).
//   * Vectors are exchanged at every contact; the cost to a destination is
//     the cheapest path under edge weights (1 - f), found with Dijkstra.
//   * Transmission order: packets for the peer first; then packets with few
//     hops (below an adaptive head-start threshold) lowest-hopcount-first;
//     then the rest lowest-path-cost-first.
//   * Delivery acknowledgments are flooded and purge delivered copies.
//   * Storage pressure drops the highest-cost packet outside the head-start
//     section first.
//
// The priority order is memoized behind an explicit dirty flag (buffer
// membership, likelihood vectors, or the transfer-size average changed), so
// eviction storms within one contact re-read it instead of re-sorting the
// whole buffer per drop. Hop counts live in a flat per-packet array.
#pragma once

#include <optional>
#include <vector>

#include "dtn/router.h"

namespace rapid {

struct MaxPropConfig {
  // Fraction of the buffer reserved for low-hopcount head start when storage
  // is finite; with unlimited buffers the average transfer size is used.
  double head_start_buffer_fraction = 0.5;
};

class MaxPropRouter : public Router {
 public:
  MaxPropRouter(NodeId self, Bytes buffer_capacity, const SimContext* ctx,
                const MaxPropConfig& config);

  bool on_generate(const Packet& p) override;
  void observe_opportunity(Bytes capacity, NodeId peer, Time now) override;
  Bytes contact_begin(const PeerView& peer, Time now, Bytes meta_budget) override;
  std::optional<PacketId> next_transfer(const ContactContext& contact,
                                        const PeerView& peer) override;
  std::int64_t transfer_aux(const Packet& p, const PeerView& peer) override;
  void on_transfer_success(const Packet& p, const PeerView& peer, ReceiveOutcome outcome,
                           Time now) override;
  PacketId choose_drop_victim(const Packet& incoming, Time now) override;

  // Cheapest (1 - f) path cost from this node to `dst` under current vectors.
  double path_cost(NodeId dst) const;
  double meeting_likelihood(NodeId peer) const;
  int hop_count(PacketId id) const;

  // Snapshot/restore: likelihood vectors with their stamps, hop counts and
  // the transfer-size average; the cost/priority memos restore cold behind
  // their dirty flags (a fresh router starts dirty anyway).
  void save_state(BinWriter& out) override;
  void load_state(BinReader& in) override;

 protected:
  void on_stored(const Packet& p, NodeId from, std::int64_t aux, Time now) override;
  void on_dropped(const Packet& p, Time now) override;
  void on_acked(const Packet& p, Time now) override;

 private:
  MaxPropConfig config_;
  // f_[u] = latest known likelihood vector of node u (f_[self] is ours).
  std::vector<std::vector<double>> f_;
  std::vector<Time> f_stamp_;
  std::vector<std::int32_t> hops_;  // flat, by packet id; 0 = untracked/source
  double avg_transfer_bytes_ = 0;
  std::size_t transfers_seen_ = 0;

  mutable bool costs_dirty_ = true;
  mutable std::vector<double> cost_cache_;

  // Memoized transmission/drop priority order over the current buffer.
  mutable bool priority_dirty_ = true;
  mutable std::vector<PacketId> priority_cache_;

  std::vector<PacketId> direct_order_;
  std::size_t direct_cursor_ = 0;
  std::vector<PacketId> send_order_;
  std::size_t send_cursor_ = 0;

  void set_hops(PacketId id, int hops);
  void normalize_own();
  void recompute_costs() const;
  Bytes head_start_bytes() const;
  void build_plan(const PeerView& peer);
  // Ordered buffer view: head-start section (hopcount asc) then cost asc.
  // Recomputed only when the dirty flag is set.
  const std::vector<PacketId>& priority_order() const;
};

RouterFactory make_maxprop_factory(const MaxPropConfig& config, Bytes buffer_capacity);

}  // namespace rapid
