#include "baselines/prophet.h"

#include <algorithm>
#include <cmath>

#include "core/metadata.h"  // wire-size constants for metadata accounting
#include "util/binio.h"

namespace rapid {

ProphetRouter::ProphetRouter(NodeId self, Bytes buffer_capacity, const SimContext* ctx,
                             const ProphetConfig& config)
    : Router(self, buffer_capacity, ctx), config_(config) {
  p_.assign(static_cast<std::size_t>(ctx->num_nodes), 0.0);
}

bool ProphetRouter::on_generate(const Packet& p) {
  if (!Router::on_generate(p)) return false;
  age_order_.insert(p.created, p.id);
  return true;
}

void ProphetRouter::on_stored(const Packet& p, NodeId /*from*/, std::int64_t /*aux*/,
                              Time /*now*/) {
  age_order_.insert(p.created, p.id);
}

void ProphetRouter::on_dropped(const Packet& p, Time /*now*/) {
  age_order_.remove(p.created, p.id);
}

void ProphetRouter::on_acked(const Packet& p, Time /*now*/) {
  age_order_.remove(p.created, p.id);
}

void ProphetRouter::age_to(Time now) const {
  if (now <= last_aged_) return;
  const double k = (now - last_aged_) / config_.aging_unit;
  const double factor = std::pow(config_.gamma, k);
  for (double& v : p_) v *= factor;
  last_aged_ = now;
}

double ProphetRouter::predictability(NodeId dst, Time now) const {
  age_to(now);
  return p_[static_cast<std::size_t>(dst)];
}

Bytes ProphetRouter::contact_begin(const PeerView& peer, Time now, Bytes meta_budget) {
  Router::contact_begin(peer, now, meta_budget);
  age_to(now);

  // Direct-encounter update.
  auto& mine = p_[static_cast<std::size_t>(peer.self())];
  mine = mine + (1.0 - mine) * config_.p_init;

  // Transitive update from the peer's vector (its contact_begin may not have
  // run yet this meeting, but its vector is aged on read).
  auto* prophet_peer = peer.as<ProphetRouter>();
  if (prophet_peer == nullptr) return 0;
  const double p_ab = mine;
  for (NodeId d = 0; d < ctx().num_nodes; ++d) {
    if (d == self() || d == peer.self()) continue;
    const double p_bd = prophet_peer->predictability(d, now);
    const double transitive = p_ab * p_bd * config_.beta;
    auto& slot = p_[static_cast<std::size_t>(d)];
    slot = std::max(slot, transitive);
  }
  // The exchanged vector costs one entry per node.
  const Bytes cost = kMeetingRowEntryBytes * static_cast<Bytes>(ctx().num_nodes);
  return std::min(cost, meta_budget);
}

void ProphetRouter::build_plan(const PeerView& peer, Time now) {
  mark_plan_built(peer.self());
  direct_order_.clear();
  direct_cursor_ = 0;
  forward_order_.clear();
  forward_cursor_ = 0;
  auto* prophet_peer = peer.as<ProphetRouter>();
  // The maintained order is already oldest-first, so the direct tier is a
  // plain filter; only the peer-dependent GRTR tier still sorts (and only
  // over the packets it admits).
  for (const auto& [created, id] : age_order_.entries()) {
    const Packet& p = ctx().packet(id);
    if (p.dst == peer.self()) {
      direct_order_.push_back(id);
      continue;
    }
    if (prophet_peer == nullptr) continue;
    const double theirs = prophet_peer->predictability(p.dst, now);
    const double ours = predictability(p.dst, now);
    if (theirs > ours) forward_order_.emplace_back(theirs, id);  // GRTR
  }
  std::stable_sort(forward_order_.begin(), forward_order_.end(),
                   [](const auto& a, const auto& b) { return a.first > b.first; });
}

std::optional<PacketId> ProphetRouter::next_transfer(const ContactContext& contact,
                                                     const PeerView& peer) {
  if (!plan_current(peer.self())) build_plan(peer, contact.now);
  while (direct_cursor_ < direct_order_.size()) {
    const PacketId id = direct_order_[direct_cursor_];
    ++direct_cursor_;
    if (!buffer().contains(id) || peer.has_received(id) || contact_skipped(id, peer.self())) continue;
    if (ctx().packet(id).size > contact.remaining) continue;
    return id;
  }
  while (forward_cursor_ < forward_order_.size()) {
    const PacketId id = forward_order_[forward_cursor_].second;
    ++forward_cursor_;
    if (!buffer().contains(id)) continue;
    const Packet& p = ctx().packet(id);
    if (!peer_wants(peer, p)) continue;
    if (p.size > contact.remaining) continue;
    return id;
  }
  return std::nullopt;
}

PacketId ProphetRouter::choose_drop_victim(const Packet& /*incoming*/, Time now) {
  PacketId victim = kNoPacket;
  double lowest = 0;
  buffer().for_each([&](PacketId id, Bytes /*size*/) {
    const double p = predictability(ctx().packet(id).dst, now);
    if (victim == kNoPacket || p < lowest) {
      victim = id;
      lowest = p;
    }
  });
  return victim;
}

void ProphetRouter::save_state(BinWriter& out) {
  Router::save_state(out);
  out.tag("PRPH");
  out.u64(p_.size());
  for (double v : p_) out.f64(v);
  out.f64(last_aged_);
}

void ProphetRouter::load_state(BinReader& in) {
  Router::load_state(in);
  in.expect_tag("PRPH");
  if (in.u64() != p_.size()) BinReader::fail("prophet vector size differs from the snapshot's");
  for (double& v : p_) v = in.f64();
  last_aged_ = in.f64();
  age_order_.clear();
  buffer().for_each(
      [&](PacketId id, Bytes /*size*/) { age_order_.insert(ctx().packet(id).created, id); });
}

RouterFactory make_prophet_factory(const ProphetConfig& config, Bytes buffer_capacity) {
  return [config, buffer_capacity](NodeId node, const SimContext& ctx) {
    return std::make_unique<ProphetRouter>(node, buffer_capacity, &ctx, config);
  };
}

}  // namespace rapid
