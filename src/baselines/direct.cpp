#include "baselines/direct.h"

#include <algorithm>

namespace rapid {

DirectRouter::DirectRouter(NodeId self, Bytes buffer_capacity, const SimContext* ctx)
    : Router(self, buffer_capacity, ctx) {}

bool DirectRouter::on_generate(const Packet& p) {
  if (!Router::on_generate(p)) return false;
  age_order_.insert(p.created, p.id);
  return true;
}

void DirectRouter::on_stored(const Packet& p, NodeId /*from*/, std::int64_t /*aux*/,
                             Time /*now*/) {
  age_order_.insert(p.created, p.id);
}

void DirectRouter::on_dropped(const Packet& p, Time /*now*/) {
  age_order_.remove(p.created, p.id);
}

void DirectRouter::on_acked(const Packet& p, Time /*now*/) {
  age_order_.remove(p.created, p.id);
}

std::optional<PacketId> DirectRouter::next_transfer(const ContactContext& contact,
                                                    const PeerView& peer) {
  if (!plan_current(peer.self())) {
    mark_plan_built(peer.self());
    order_.clear();
    cursor_ = 0;
    for (const auto& [created, id] : age_order_.entries())
      if (ctx().packet(id).dst == peer.self()) order_.push_back(id);
  }
  while (cursor_ < order_.size()) {
    const PacketId id = order_[cursor_];
    ++cursor_;
    if (!buffer().contains(id) || peer.has_received(id) || contact_skipped(id, peer.self())) continue;
    if (ctx().packet(id).size > contact.remaining) continue;
    return id;
  }
  return std::nullopt;
}

PacketId DirectRouter::choose_drop_victim(const Packet& /*incoming*/, Time /*now*/) {
  // The buffer only ever holds this node's own packets; refuse to drop them.
  return kNoPacket;
}

void DirectRouter::load_state(BinReader& in) {
  Router::load_state(in);
  age_order_.clear();
  buffer().for_each(
      [&](PacketId id, Bytes /*size*/) { age_order_.insert(ctx().packet(id).created, id); });
}

RouterFactory make_direct_factory(Bytes buffer_capacity) {
  return [buffer_capacity](NodeId node, const SimContext& ctx) {
    return std::make_unique<DirectRouter>(node, buffer_capacity, &ctx);
  };
}

}  // namespace rapid
