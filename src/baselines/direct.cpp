#include "baselines/direct.h"

#include <algorithm>

namespace rapid {

DirectRouter::DirectRouter(NodeId self, Bytes buffer_capacity, const SimContext* ctx)
    : Router(self, buffer_capacity, ctx) {}

std::optional<PacketId> DirectRouter::next_transfer(const ContactContext& contact,
                                                    const PeerView& peer) {
  if (!plan_current(peer.self())) {
    mark_plan_built(peer.self());
    order_.clear();
    cursor_ = 0;
    buffer().for_each([&](PacketId id, Bytes /*size*/) {
      if (ctx().packet(id).dst == peer.self()) order_.push_back(id);
    });
    std::sort(order_.begin(), order_.end(), [&](PacketId a, PacketId b) {
      return ctx().packet(a).created < ctx().packet(b).created;
    });
  }
  while (cursor_ < order_.size()) {
    const PacketId id = order_[cursor_];
    ++cursor_;
    if (!buffer().contains(id) || peer.has_received(id) || contact_skipped(id, peer.self())) continue;
    if (ctx().packet(id).size > contact.remaining) continue;
    return id;
  }
  return std::nullopt;
}

PacketId DirectRouter::choose_drop_victim(const Packet& /*incoming*/, Time /*now*/) {
  // The buffer only ever holds this node's own packets; refuse to drop them.
  return kNoPacket;
}

RouterFactory make_direct_factory(Bytes buffer_capacity) {
  return [buffer_capacity](NodeId node, const SimContext& ctx) {
    return std::make_unique<DirectRouter>(node, buffer_capacity, &ctx);
  };
}

}  // namespace rapid
