// Direct delivery: a packet is held by its source until the source meets the
// destination. The forwarding-free extreme; useful as a floor in tests and
// ablations.
#pragma once

#include <optional>

#include "dtn/router.h"

namespace rapid {

class DirectRouter : public Router {
 public:
  DirectRouter(NodeId self, Bytes buffer_capacity, const SimContext* ctx);

  std::optional<PacketId> next_transfer(const ContactContext& contact, const PeerView& peer) override;
  PacketId choose_drop_victim(const Packet& incoming, Time now) override;

 private:
  std::vector<PacketId> order_;
  std::size_t cursor_ = 0;
};

RouterFactory make_direct_factory(Bytes buffer_capacity);

}  // namespace rapid
