// Direct delivery: a packet is held by its source until the source meets the
// destination. The forwarding-free extreme; useful as a floor in tests and
// ablations.
#pragma once

#include <optional>

#include "dtn/age_order.h"
#include "dtn/router.h"

namespace rapid {

class DirectRouter : public Router {
 public:
  DirectRouter(NodeId self, Bytes buffer_capacity, const SimContext* ctx);

  bool on_generate(const Packet& p) override;
  std::optional<PacketId> next_transfer(const ContactContext& contact, const PeerView& peer) override;
  PacketId choose_drop_victim(const Packet& incoming, Time now) override;

  // No state beyond the base router's; the age order is rebuilt from the
  // restored buffer (it is canonical).
  void load_state(BinReader& in) override;

 protected:
  void on_stored(const Packet& p, NodeId from, std::int64_t aux, Time now) override;
  void on_dropped(const Packet& p, Time now) override;
  void on_acked(const Packet& p, Time now) override;

 private:
  AgeOrder age_order_;  // own packets, oldest first, maintained across contacts
  std::vector<PacketId> order_;
  std::size_t cursor_ = 0;
};

RouterFactory make_direct_factory(Bytes buffer_capacity);

}  // namespace rapid
