// Epidemic routing [Vahdat & Becker 2000]: flood every packet at every
// transfer opportunity, oldest first, with optional delivery-ack purging.
// Included as the classical replication extreme (Table 1, problem P1).
#pragma once

#include <optional>
#include <vector>

#include "dtn/age_order.h"
#include "dtn/router.h"

namespace rapid {

struct EpidemicConfig {
  bool flood_acks = false;
};

class EpidemicRouter : public Router {
 public:
  EpidemicRouter(NodeId self, Bytes buffer_capacity, const SimContext* ctx,
                 const EpidemicConfig& config);

  bool on_generate(const Packet& p) override;
  Bytes contact_begin(const PeerView& peer, Time now, Bytes meta_budget) override;
  std::optional<PacketId> next_transfer(const ContactContext& contact, const PeerView& peer) override;
  void on_transfer_success(const Packet& p, const PeerView& peer, ReceiveOutcome outcome,
                           Time now) override;
  PacketId choose_drop_victim(const Packet& incoming, Time now) override;

  // Snapshot/restore: arrival sequence numbers for the FIFO drop order; the
  // age order is rebuilt from the restored buffer (it is canonical).
  void save_state(BinWriter& out) override;
  void load_state(BinReader& in) override;

 protected:
  void on_stored(const Packet& p, NodeId from, std::int64_t aux, Time now) override;
  void on_dropped(const Packet& p, Time now) override;
  void on_acked(const Packet& p, Time now) override;

 private:
  EpidemicConfig config_;
  std::uint64_t arrival_seq_ = 0;
  std::vector<std::uint64_t> arrival_;  // flat FIFO order for drops, by packet id

  // Oldest-first candidate order, maintained across contacts (insert-sorted
  // on admit, swap-removed on drop/ack) instead of re-sorted per contact.
  AgeOrder age_order_;
  std::vector<PacketId> order_;  // per-contact: destined-to-peer first, then rest
  std::size_t cursor_ = 0;

  void note_arrival(PacketId id);
  void build_plan(const PeerView& peer);
};

RouterFactory make_epidemic_factory(const EpidemicConfig& config, Bytes buffer_capacity);

}  // namespace rapid
