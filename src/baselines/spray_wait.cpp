#include "baselines/spray_wait.h"

#include <algorithm>

namespace rapid {

SprayWaitRouter::SprayWaitRouter(NodeId self, Bytes buffer_capacity, const SimContext* ctx,
                                 const SprayWaitConfig& config)
    : Router(self, buffer_capacity, ctx), config_(config) {
  if (config.initial_copies < 1)
    throw std::invalid_argument("SprayWaitRouter: initial_copies < 1");
}

int SprayWaitRouter::copies_of(PacketId id) const {
  auto it = copies_.find(id);
  return it == copies_.end() ? 0 : it->second;
}

bool SprayWaitRouter::on_generate(const Packet& p) {
  if (!Router::on_generate(p)) return false;
  copies_[p.id] = config_.initial_copies;
  return true;
}

void SprayWaitRouter::on_stored(const Packet& p, NodeId /*from*/, std::int64_t aux,
                                Time /*now*/) {
  copies_[p.id] = static_cast<int>(std::max<std::int64_t>(1, aux));
}

void SprayWaitRouter::on_dropped(const Packet& p, Time /*now*/) { copies_.erase(p.id); }
void SprayWaitRouter::on_acked(const Packet& p, Time /*now*/) { copies_.erase(p.id); }

void SprayWaitRouter::build_plan(const PeerView& peer) {
  mark_plan_built(peer.self());
  direct_order_.clear();
  direct_cursor_ = 0;
  spray_order_.clear();
  spray_cursor_ = 0;
  buffer().for_each([&](PacketId id, Bytes /*size*/) {
    const Packet& p = ctx().packet(id);
    if (p.dst == peer.self()) {
      direct_order_.push_back(id);
    } else if (copies_of(id) > 1) {
      spray_order_.push_back(id);  // wait phase (1 copy) never replicates
    }
  });
  auto oldest_first = [&](PacketId a, PacketId b) {
    return ctx().packet(a).created < ctx().packet(b).created;
  };
  std::sort(direct_order_.begin(), direct_order_.end(), oldest_first);
  std::sort(spray_order_.begin(), spray_order_.end(), oldest_first);
}

std::optional<PacketId> SprayWaitRouter::next_transfer(const ContactContext& contact,
                                                       const PeerView& peer) {
  if (!plan_current(peer.self())) build_plan(peer);
  while (direct_cursor_ < direct_order_.size()) {
    const PacketId id = direct_order_[direct_cursor_];
    ++direct_cursor_;
    if (!buffer().contains(id) || peer.has_received(id) || contact_skipped(id, peer.self())) continue;
    if (ctx().packet(id).size > contact.remaining) continue;
    return id;
  }
  while (spray_cursor_ < spray_order_.size()) {
    const PacketId id = spray_order_[spray_cursor_];
    ++spray_cursor_;
    if (!buffer().contains(id) || copies_of(id) <= 1) continue;
    const Packet& p = ctx().packet(id);
    if (!peer_wants(peer, p)) continue;
    if (p.size > contact.remaining) continue;
    return id;
  }
  return std::nullopt;
}

std::int64_t SprayWaitRouter::transfer_aux(const Packet& p, const PeerView& /*peer*/) {
  // Binary spray: hand over half the copies.
  return copies_of(p.id) / 2;
}

void SprayWaitRouter::on_transfer_success(const Packet& p, const PeerView& /*peer*/,
                                          ReceiveOutcome outcome, Time /*now*/) {
  if (outcome != ReceiveOutcome::kStored) return;
  auto it = copies_.find(p.id);
  if (it == copies_.end()) return;
  it->second -= it->second / 2;  // keep the ceiling half
  if (it->second < 1) it->second = 1;
}

PacketId SprayWaitRouter::choose_drop_victim(const Packet& /*incoming*/, Time /*now*/) {
  // §6.3.2: "Spray and Wait and Random deletes packets randomly."
  const std::vector<PacketId> ids = buffer().packet_ids();
  if (ids.empty()) return kNoPacket;
  return ids[static_cast<std::size_t>(
      rng().uniform_int(0, static_cast<std::int64_t>(ids.size()) - 1))];
}

RouterFactory make_spray_wait_factory(const SprayWaitConfig& config, Bytes buffer_capacity) {
  return [config, buffer_capacity](NodeId node, const SimContext& ctx) {
    return std::make_unique<SprayWaitRouter>(node, buffer_capacity, &ctx, config);
  };
}

}  // namespace rapid
