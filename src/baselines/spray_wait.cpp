#include "baselines/spray_wait.h"

#include <algorithm>
#include <stdexcept>

#include "util/binio.h"
#include "util/slab.h"

namespace rapid {

SprayWaitRouter::SprayWaitRouter(NodeId self, Bytes buffer_capacity, const SimContext* ctx,
                                 const SprayWaitConfig& config)
    : Router(self, buffer_capacity, ctx), config_(config) {
  if (config.initial_copies < 1)
    throw std::invalid_argument("SprayWaitRouter: initial_copies < 1");
}

int SprayWaitRouter::copies_of(PacketId id) const {
  return static_cast<std::size_t>(id) < copies_.size()
             ? copies_[static_cast<std::size_t>(id)]
             : 0;
}

void SprayWaitRouter::set_copies(PacketId id, int copies) {
  grow_slot(copies_, id, std::int32_t{0}) = copies;
}

bool SprayWaitRouter::on_generate(const Packet& p) {
  if (!Router::on_generate(p)) return false;
  set_copies(p.id, config_.initial_copies);
  age_order_.insert(p.created, p.id);
  return true;
}

void SprayWaitRouter::on_stored(const Packet& p, NodeId /*from*/, std::int64_t aux,
                                Time /*now*/) {
  set_copies(p.id, static_cast<int>(std::max<std::int64_t>(1, aux)));
  age_order_.insert(p.created, p.id);
}

void SprayWaitRouter::on_dropped(const Packet& p, Time /*now*/) {
  set_copies(p.id, 0);
  age_order_.remove(p.created, p.id);
}

void SprayWaitRouter::on_acked(const Packet& p, Time /*now*/) {
  set_copies(p.id, 0);
  age_order_.remove(p.created, p.id);
}

void SprayWaitRouter::build_plan(const PeerView& peer) {
  mark_plan_built(peer.self());
  direct_order_.clear();
  direct_cursor_ = 0;
  spray_order_.clear();
  spray_cursor_ = 0;
  // One linear pass over the maintained oldest-first order; no per-contact
  // sort.
  for (const auto& [created, id] : age_order_.entries()) {
    const Packet& p = ctx().packet(id);
    if (p.dst == peer.self()) {
      direct_order_.push_back(id);
    } else if (copies_of(id) > 1) {
      spray_order_.push_back(id);  // wait phase (1 copy) never replicates
    }
  }
}

std::optional<PacketId> SprayWaitRouter::next_transfer(const ContactContext& contact,
                                                       const PeerView& peer) {
  if (!plan_current(peer.self())) build_plan(peer);
  while (direct_cursor_ < direct_order_.size()) {
    const PacketId id = direct_order_[direct_cursor_];
    ++direct_cursor_;
    if (!buffer().contains(id) || peer.has_received(id) || contact_skipped(id, peer.self())) continue;
    if (ctx().packet(id).size > contact.remaining) continue;
    return id;
  }
  while (spray_cursor_ < spray_order_.size()) {
    const PacketId id = spray_order_[spray_cursor_];
    ++spray_cursor_;
    if (!buffer().contains(id) || copies_of(id) <= 1) continue;
    const Packet& p = ctx().packet(id);
    if (!peer_wants(peer, p)) continue;
    if (p.size > contact.remaining) continue;
    return id;
  }
  return std::nullopt;
}

std::int64_t SprayWaitRouter::transfer_aux(const Packet& p, const PeerView& /*peer*/) {
  // Binary spray: hand over half the copies.
  return copies_of(p.id) / 2;
}

void SprayWaitRouter::on_transfer_success(const Packet& p, const PeerView& /*peer*/,
                                          ReceiveOutcome outcome, Time /*now*/) {
  if (outcome != ReceiveOutcome::kStored) return;
  const int current = copies_of(p.id);
  if (current == 0) return;
  set_copies(p.id, std::max(1, current - current / 2));  // keep the ceiling half
}

PacketId SprayWaitRouter::choose_drop_victim(const Packet& /*incoming*/, Time /*now*/) {
  // §6.3.2: "Spray and Wait and Random deletes packets randomly." Picks
  // straight from the buffer's packed entry list — no snapshot allocation.
  const Span<Buffer::Entry> entries = buffer().entries();
  if (entries.empty()) return kNoPacket;
  return entries[static_cast<std::size_t>(
                     rng().uniform_int(0, static_cast<std::int64_t>(entries.size()) - 1))]
      .id;
}

void SprayWaitRouter::save_state(BinWriter& out) {
  Router::save_state(out);
  out.tag("SPRY");
  std::uint64_t tracked = 0;
  for (std::int32_t c : copies_) tracked += c != 0 ? 1 : 0;
  out.u64(tracked);
  for (std::size_t id = 0; id < copies_.size(); ++id) {
    if (copies_[id] == 0) continue;
    out.i64(static_cast<std::int64_t>(id));
    out.i64(copies_[id]);
  }
}

void SprayWaitRouter::load_state(BinReader& in) {
  Router::load_state(in);
  in.expect_tag("SPRY");
  const std::uint64_t tracked = in.u64();
  for (std::uint64_t i = 0; i < tracked; ++i) {
    const PacketId id = static_cast<PacketId>(in.i64());
    set_copies(id, static_cast<int>(in.i64()));
  }
  age_order_.clear();
  buffer().for_each(
      [&](PacketId id, Bytes /*size*/) { age_order_.insert(ctx().packet(id).created, id); });
}

RouterFactory make_spray_wait_factory(const SprayWaitConfig& config, Bytes buffer_capacity) {
  return [config, buffer_capacity](NodeId node, const SimContext& ctx) {
    return std::make_unique<SprayWaitRouter>(node, buffer_capacity, &ctx, config);
  };
}

}  // namespace rapid
