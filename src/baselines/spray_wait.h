// Binary Spray and Wait [Spyropoulos et al. 2005], as configured in §6.1:
// every packet starts with L = 12 logical copies at its source ("set based on
// consultation with authors and LEMMA 4.3 in [30] with a = 4"). A node
// holding c > 1 copies hands floor(c/2) to a node without the packet (spray);
// a node holding a single copy waits to deliver it directly (wait).
#pragma once

#include <optional>
#include <vector>

#include "dtn/age_order.h"
#include "dtn/router.h"

namespace rapid {

struct SprayWaitConfig {
  int initial_copies = 12;
};

class SprayWaitRouter : public Router {
 public:
  SprayWaitRouter(NodeId self, Bytes buffer_capacity, const SimContext* ctx,
                  const SprayWaitConfig& config);

  bool on_generate(const Packet& p) override;
  std::optional<PacketId> next_transfer(const ContactContext& contact, const PeerView& peer) override;
  std::int64_t transfer_aux(const Packet& p, const PeerView& peer) override;
  void on_transfer_success(const Packet& p, const PeerView& peer, ReceiveOutcome outcome,
                           Time now) override;
  PacketId choose_drop_victim(const Packet& incoming, Time now) override;

  int copies_of(PacketId id) const;

  // Snapshot/restore: logical copy counts; the age order is rebuilt from the
  // restored buffer (it is canonical).
  void save_state(BinWriter& out) override;
  void load_state(BinReader& in) override;

 protected:
  void on_stored(const Packet& p, NodeId from, std::int64_t aux, Time now) override;
  void on_dropped(const Packet& p, Time now) override;
  void on_acked(const Packet& p, Time now) override;

 private:
  SprayWaitConfig config_;
  std::vector<std::int32_t> copies_;  // flat, by packet id; 0 = not tracked

  // Oldest-first candidate order maintained across contacts; per-contact
  // plans are linear filters over it (no re-sort).
  AgeOrder age_order_;
  std::vector<PacketId> direct_order_;
  std::size_t direct_cursor_ = 0;
  std::vector<PacketId> spray_order_;
  std::size_t spray_cursor_ = 0;

  void set_copies(PacketId id, int copies);
  void build_plan(const PeerView& peer);
};

RouterFactory make_spray_wait_factory(const SprayWaitConfig& config, Bytes buffer_capacity);

}  // namespace rapid
