#include "stats/moments.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace rapid {

void RunningMoments::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningMoments::merge(const RunningMoments& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double RunningMoments::mean() const { return n_ == 0 ? 0.0 : mean_; }

double RunningMoments::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningMoments::stddev() const { return std::sqrt(variance()); }

double RunningMoments::min() const { return n_ == 0 ? 0.0 : min_; }
double RunningMoments::max() const { return n_ == 0 ? 0.0 : max_; }

void MovingAverage::add(double x) {
  ++n_;
  if (n_ == 1) {
    value_ = x;
    return;
  }
  if (alpha_ <= 0.0) {
    value_ += (x - value_) / static_cast<double>(n_);
  } else {
    value_ = alpha_ * x + (1.0 - alpha_) * value_;
  }
}

double percentile(std::vector<double> data, double p) {
  if (data.empty()) throw std::invalid_argument("percentile: empty sample");
  if (p < 0 || p > 100) throw std::invalid_argument("percentile: p out of range");
  std::sort(data.begin(), data.end());
  const double rank = p / 100.0 * static_cast<double>(data.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, data.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return data[lo] * (1 - frac) + data[hi] * frac;
}

}  // namespace rapid
