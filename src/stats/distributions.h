// Closed-form distribution helpers used by RAPID's inference algorithm
// (§4.1.1): exponential and gamma (Erlang) laws, the minimum of independent
// exponentials, and the exponential approximation to "time until the k-th
// meeting" that Eq. 7/8 rely on.
#pragma once

#include <cstddef>

namespace rapid {

// --- Exponential with rate lambda ------------------------------------------
double exponential_pdf(double x, double lambda);
double exponential_cdf(double x, double lambda);
double exponential_mean(double lambda);

// Minimum of k independent exponentials with rates lambda_1..lambda_k is an
// exponential with rate sum(lambda_i); these helpers make that explicit.
double min_exponentials_rate(const double* lambdas, std::size_t k);
double min_exponentials_cdf(double x, const double* lambdas, std::size_t k);
double min_exponentials_mean(const double* lambdas, std::size_t k);

// --- Gamma / Erlang ---------------------------------------------------------
// Time until the n-th meeting under Poisson meetings with rate lambda is
// Erlang(n, lambda): mean n / lambda.
double erlang_mean(std::size_t n, double lambda);
double erlang_cdf(double x, std::size_t n, double lambda);
double gamma_cdf(double x, double shape, double rate);
// Regularized lower incomplete gamma P(s, x).
double regularized_gamma_p(double s, double x);

// --- RAPID's exponential approximation (Eq. 7/8) ----------------------------
// The paper approximates Erlang(n, lambda) by an exponential with the same
// mean (rate lambda / n) so that the minimum across replicas stays
// exponential. Delivery probability within t given replicas with rates
// lambda_j and required meeting counts n_j:
//   P(a < t) = 1 - exp(-sum_j (lambda_j / n_j) t)
//   A        = 1 / sum_j (lambda_j / n_j)
struct ReplicaTerm {
  double lambda = 0;   // meeting rate with the destination (1 / E[M])
  std::size_t n = 1;   // meetings required to flush the queue ahead of the packet
};
double rapid_delivery_probability(double t, const ReplicaTerm* terms, std::size_t k);
double rapid_expected_delay(const ReplicaTerm* terms, std::size_t k);

}  // namespace rapid
