#include "stats/distributions.h"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace rapid {

double exponential_pdf(double x, double lambda) {
  if (lambda <= 0) throw std::invalid_argument("exponential_pdf: lambda <= 0");
  if (x < 0) return 0;
  return lambda * std::exp(-lambda * x);
}

double exponential_cdf(double x, double lambda) {
  if (lambda <= 0) throw std::invalid_argument("exponential_cdf: lambda <= 0");
  if (x <= 0) return 0;
  return 1.0 - std::exp(-lambda * x);
}

double exponential_mean(double lambda) {
  if (lambda <= 0) return std::numeric_limits<double>::infinity();
  return 1.0 / lambda;
}

double min_exponentials_rate(const double* lambdas, std::size_t k) {
  double total = 0;
  for (std::size_t i = 0; i < k; ++i) total += lambdas[i];
  return total;
}

double min_exponentials_cdf(double x, const double* lambdas, std::size_t k) {
  const double rate = min_exponentials_rate(lambdas, k);
  if (rate <= 0) return 0;
  return exponential_cdf(x, rate);
}

double min_exponentials_mean(const double* lambdas, std::size_t k) {
  const double rate = min_exponentials_rate(lambdas, k);
  return exponential_mean(rate);
}

double erlang_mean(std::size_t n, double lambda) {
  if (lambda <= 0) return std::numeric_limits<double>::infinity();
  return static_cast<double>(n) / lambda;
}

namespace {

// Series expansion of the regularized lower incomplete gamma function,
// valid for x < s + 1.
double gamma_p_series(double s, double x) {
  double sum = 1.0 / s;
  double term = sum;
  for (int k = 1; k < 500; ++k) {
    term *= x / (s + k);
    sum += term;
    if (term < sum * 1e-15) break;
  }
  return sum * std::exp(-x + s * std::log(x) - std::lgamma(s));
}

// Continued fraction for the regularized upper incomplete gamma function,
// valid for x >= s + 1 (Lentz's algorithm).
double gamma_q_cf(double s, double x) {
  constexpr double kFpMin = 1e-300;
  double b = x + 1.0 - s;
  double c = 1.0 / kFpMin;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i < 500; ++i) {
    const double an = -i * (i - s);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = b + an / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < 1e-15) break;
  }
  return std::exp(-x + s * std::log(x) - std::lgamma(s)) * h;
}

}  // namespace

double regularized_gamma_p(double s, double x) {
  if (s <= 0) throw std::invalid_argument("regularized_gamma_p: s <= 0");
  if (x < 0) throw std::invalid_argument("regularized_gamma_p: x < 0");
  if (x == 0) return 0;
  if (x < s + 1.0) return gamma_p_series(s, x);
  return 1.0 - gamma_q_cf(s, x);
}

double gamma_cdf(double x, double shape, double rate) {
  if (shape <= 0 || rate <= 0) throw std::invalid_argument("gamma_cdf: bad parameters");
  if (x <= 0) return 0;
  return regularized_gamma_p(shape, rate * x);
}

double erlang_cdf(double x, std::size_t n, double lambda) {
  if (n == 0) throw std::invalid_argument("erlang_cdf: n == 0");
  return gamma_cdf(x, static_cast<double>(n), lambda);
}

double rapid_delivery_probability(double t, const ReplicaTerm* terms, std::size_t k) {
  if (t <= 0) return 0;
  double rate = 0;
  for (std::size_t i = 0; i < k; ++i) {
    if (terms[i].n == 0) throw std::invalid_argument("rapid_delivery_probability: n == 0");
    rate += terms[i].lambda / static_cast<double>(terms[i].n);
  }
  if (rate <= 0) return 0;
  return 1.0 - std::exp(-rate * t);
}

double rapid_expected_delay(const ReplicaTerm* terms, std::size_t k) {
  double rate = 0;
  for (std::size_t i = 0; i < k; ++i) {
    if (terms[i].n == 0) throw std::invalid_argument("rapid_expected_delay: n == 0");
    rate += terms[i].lambda / static_cast<double>(terms[i].n);
  }
  if (rate <= 0) return std::numeric_limits<double>::infinity();
  return 1.0 / rate;
}

}  // namespace rapid
