// Paired t-test, used as in §6.2.1: the paper compares the average delay of
// every source-destination pair under RAPID against the same pair under
// MaxProp and reports p < 0.0005.
#pragma once

#include <cstddef>
#include <vector>

namespace rapid {

struct PairedTTestResult {
  std::size_t n = 0;          // number of pairs
  double mean_difference = 0; // mean of (a_i - b_i)
  double t_statistic = 0;
  double p_value = 1.0;       // two-sided
  bool valid = false;         // false when n < 2 or the differences are constant-zero
};

PairedTTestResult paired_t_test(const std::vector<double>& a, const std::vector<double>& b);

}  // namespace rapid
