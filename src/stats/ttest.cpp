#include "stats/ttest.h"

#include <cmath>
#include <stdexcept>

#include "stats/moments.h"
#include "stats/summary.h"

namespace rapid {

PairedTTestResult paired_t_test(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size()) throw std::invalid_argument("paired_t_test: size mismatch");
  PairedTTestResult r;
  r.n = a.size();
  if (r.n < 2) return r;

  RunningMoments diff;
  for (std::size_t i = 0; i < a.size(); ++i) diff.add(a[i] - b[i]);
  r.mean_difference = diff.mean();
  const double sd = diff.stddev();
  if (sd == 0.0) {
    // All differences identical; the test degenerates. Zero difference means
    // p = 1; a constant nonzero difference is overwhelming evidence.
    r.valid = r.mean_difference != 0.0;
    r.p_value = r.mean_difference == 0.0 ? 1.0 : 0.0;
    r.t_statistic = r.mean_difference == 0.0 ? 0.0
                    : (r.mean_difference > 0 ? 1e9 : -1e9);
    return r;
  }
  const double se = sd / std::sqrt(static_cast<double>(r.n));
  r.t_statistic = r.mean_difference / se;
  const double cdf = student_t_cdf(std::fabs(r.t_statistic), r.n - 1);
  r.p_value = 2.0 * (1.0 - cdf);
  r.valid = true;
  return r;
}

}  // namespace rapid
