// Discretized delay distributions with the two operators the idealized
// DAG_DELAY estimator (paper Appendix C) needs:
//
//   a ⊕ b  — the distribution of the sum of two independent delays
//            (convolution), e.g. "meet Z, then meet Z again";
//   min    — the distribution of the minimum of independent delays,
//            composed via survival functions: S_min = prod S_i.
//
// A distribution is represented by its CDF sampled on a uniform grid
// [0, horizon] with `bins` cells; mass beyond the horizon is the remaining
// tail (CDF simply has not reached 1). This keeps both operators O(bins^2)
// and O(bins) respectively, and is exact in the limit of fine grids.
#pragma once

#include <cstddef>
#include <vector>

namespace rapid {

class DiscreteDist {
 public:
  // CDF grid of `bins` points covering (0, horizon]; cdf_[i] = P(X <= step*(i+1)).
  DiscreteDist(double horizon, std::size_t bins);

  static DiscreteDist exponential(double lambda, double horizon, std::size_t bins);
  static DiscreteDist erlang(std::size_t n, double lambda, double horizon, std::size_t bins);
  // Deterministic (point mass) delay.
  static DiscreteDist constant(double value, double horizon, std::size_t bins);

  double horizon() const { return horizon_; }
  std::size_t bins() const { return cdf_.size(); }
  double step() const { return horizon_ / static_cast<double>(cdf_.size()); }

  double cdf(double t) const;           // P(X <= t), clamped at the horizon value
  double survival(double t) const { return 1.0 - cdf(t); }
  // Expectation restricted to the grid; tail mass beyond the horizon
  // contributes horizon (a deliberate, documented truncation).
  double mean() const;

  // Sum of independent delays.
  DiscreteDist convolve(const DiscreteDist& other) const;
  // Minimum of independent delays.
  DiscreteDist min_with(const DiscreteDist& other) const;

  const std::vector<double>& raw_cdf() const { return cdf_; }

 private:
  double horizon_;
  std::vector<double> cdf_;

  void enforce_monotone();
};

}  // namespace rapid
