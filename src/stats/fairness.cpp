#include "stats/fairness.h"

namespace rapid {

double jain_fairness_index(const std::vector<double>& values) {
  if (values.size() <= 1) return 1.0;
  double sum = 0, sum_sq = 0;
  for (double v : values) {
    sum += v;
    sum_sq += v * v;
  }
  if (sum_sq == 0.0) return 1.0;  // all-zero delays: perfectly fair
  return (sum * sum) / (static_cast<double>(values.size()) * sum_sq);
}

}  // namespace rapid
