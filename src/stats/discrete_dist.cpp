#include "stats/discrete_dist.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "stats/distributions.h"

namespace rapid {

DiscreteDist::DiscreteDist(double horizon, std::size_t bins) : horizon_(horizon) {
  if (horizon <= 0) throw std::invalid_argument("DiscreteDist: horizon <= 0");
  if (bins == 0) throw std::invalid_argument("DiscreteDist: bins == 0");
  cdf_.assign(bins, 0.0);
}

void DiscreteDist::enforce_monotone() {
  double running = 0;
  for (double& v : cdf_) {
    running = std::clamp(std::max(running, v), 0.0, 1.0);
    v = running;
  }
}

DiscreteDist DiscreteDist::exponential(double lambda, double horizon, std::size_t bins) {
  DiscreteDist d(horizon, bins);
  const double dt = d.step();
  for (std::size_t i = 0; i < bins; ++i) {
    d.cdf_[i] = exponential_cdf(dt * static_cast<double>(i + 1), lambda);
  }
  return d;
}

DiscreteDist DiscreteDist::erlang(std::size_t n, double lambda, double horizon, std::size_t bins) {
  DiscreteDist d(horizon, bins);
  const double dt = d.step();
  for (std::size_t i = 0; i < bins; ++i) {
    d.cdf_[i] = erlang_cdf(dt * static_cast<double>(i + 1), n, lambda);
  }
  return d;
}

DiscreteDist DiscreteDist::constant(double value, double horizon, std::size_t bins) {
  DiscreteDist d(horizon, bins);
  const double dt = d.step();
  for (std::size_t i = 0; i < bins; ++i) {
    d.cdf_[i] = (dt * static_cast<double>(i + 1) >= value) ? 1.0 : 0.0;
  }
  return d;
}

double DiscreteDist::cdf(double t) const {
  if (t <= 0) return 0;
  const double dt = step();
  const auto idx = static_cast<std::size_t>(t / dt);
  if (idx == 0) return cdf_[0] * (t / dt);  // linear below the first grid point
  if (idx >= cdf_.size()) return cdf_.back();
  // Linear interpolation between grid points idx-1 and idx.
  const double t0 = dt * static_cast<double>(idx);
  const double frac = (t - t0) / dt;
  return cdf_[idx - 1] + frac * (cdf_[idx] - cdf_[idx - 1]);
}

double DiscreteDist::mean() const {
  // E[X] = integral of the survival function; rectangle rule on the grid,
  // tail mass beyond the horizon truncated at the horizon.
  const double dt = step();
  double total = 0;
  double prev_cdf = 0;
  for (double v : cdf_) {
    // Survival over this cell approximated by 1 - cdf at the left edge.
    total += (1.0 - prev_cdf) * dt;
    prev_cdf = v;
  }
  return total;
}

DiscreteDist DiscreteDist::convolve(const DiscreteDist& other) const {
  if (bins() != other.bins() || horizon_ != other.horizon_)
    throw std::invalid_argument("DiscreteDist::convolve: grid mismatch");
  const std::size_t n = bins();
  const double dt = step();

  // Work with per-cell probability masses.
  std::vector<double> pa(n), pb(n);
  double prev = 0;
  for (std::size_t i = 0; i < n; ++i) {
    pa[i] = cdf_[i] - prev;
    prev = cdf_[i];
  }
  prev = 0;
  for (std::size_t i = 0; i < n; ++i) {
    pb[i] = other.cdf_[i] - prev;
    prev = other.cdf_[i];
  }

  std::vector<double> pc(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    if (pa[i] == 0) continue;
    for (std::size_t j = 0; j + i + 1 < n; ++j) {
      // Mass at cells i and j sums to a delay in cell ~(i + j + 1); the +1
      // keeps the convolution conservative (never underestimates delay).
      pc[i + j + 1] += pa[i] * pb[j];
    }
  }

  DiscreteDist out(horizon_, n);
  double acc = 0;
  for (std::size_t i = 0; i < n; ++i) {
    acc += pc[i];
    out.cdf_[i] = acc;
  }
  out.enforce_monotone();
  (void)dt;
  return out;
}

DiscreteDist DiscreteDist::min_with(const DiscreteDist& other) const {
  if (bins() != other.bins() || horizon_ != other.horizon_)
    throw std::invalid_argument("DiscreteDist::min_with: grid mismatch");
  DiscreteDist out(horizon_, bins());
  for (std::size_t i = 0; i < bins(); ++i) {
    const double sa = 1.0 - cdf_[i];
    const double sb = 1.0 - other.cdf_[i];
    out.cdf_[i] = 1.0 - sa * sb;
  }
  out.enforce_monotone();
  return out;
}

}  // namespace rapid
