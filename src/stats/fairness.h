// Jain's fairness index over per-packet delays, used by the Fig 15
// experiment: packets created in parallel should see similar delays.
//
// The paper's expression (§6.2.5) is the standard Jain index
//   J = (sum d_i)^2 / (n * sum d_i^2)
// which is 1 when all delays are equal and 1/n when one packet absorbs all
// the delay.
#pragma once

#include <vector>

namespace rapid {

// Returns the Jain fairness index in (0, 1]; 1.0 for an empty or singleton
// cohort (trivially fair).
double jain_fairness_index(const std::vector<double>& values);

}  // namespace rapid
