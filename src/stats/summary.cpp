#include "stats/summary.h"

#include <cmath>
#include <stdexcept>

#include "stats/moments.h"

namespace rapid {
namespace {

// Continued-fraction evaluation of the incomplete beta function
// (Numerical Recipes style, Lentz's algorithm).
double betacf(double a, double b, double x) {
  constexpr int kMaxIter = 200;
  constexpr double kEps = 3e-14;
  constexpr double kFpMin = 1e-300;

  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kFpMin) d = kFpMin;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIter; ++m) {
    const int m2 = 2 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEps) break;
  }
  return h;
}

}  // namespace

double incomplete_beta(double a, double b, double x) {
  if (x < 0.0 || x > 1.0) throw std::invalid_argument("incomplete_beta: x out of [0,1]");
  if (x == 0.0) return 0.0;
  if (x == 1.0) return 1.0;
  const double ln_bt = std::lgamma(a + b) - std::lgamma(a) - std::lgamma(b) +
                       a * std::log(x) + b * std::log(1.0 - x);
  const double bt = std::exp(ln_bt);
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return bt * betacf(a, b, x) / a;
  }
  return 1.0 - bt * betacf(b, a, 1.0 - x) / b;
}

double student_t_cdf(double t, std::size_t df) {
  if (df == 0) throw std::invalid_argument("student_t_cdf: df == 0");
  const double v = static_cast<double>(df);
  const double x = v / (v + t * t);
  const double p = 0.5 * incomplete_beta(v / 2.0, 0.5, x);
  return t >= 0 ? 1.0 - p : p;
}

double student_t_critical(std::size_t df, double confidence) {
  if (df == 0) throw std::invalid_argument("student_t_critical: df == 0");
  if (confidence <= 0 || confidence >= 1)
    throw std::invalid_argument("student_t_critical: confidence out of (0,1)");
  // Bisection on the CDF; the CDF is monotone in t.
  const double target = 0.5 + confidence / 2.0;
  double lo = 0.0, hi = 1e3;
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (student_t_cdf(mid, df) < target)
      lo = mid;
    else
      hi = mid;
  }
  return 0.5 * (lo + hi);
}

Summary summarize(const std::vector<double>& samples, double confidence) {
  Summary s;
  RunningMoments m;
  for (double x : samples) m.add(x);
  s.n = m.count();
  s.mean = m.mean();
  s.stddev = m.stddev();
  if (s.n >= 2) {
    const double se = s.stddev / std::sqrt(static_cast<double>(s.n));
    s.ci_half_width = student_t_critical(s.n - 1, confidence) * se;
  }
  return s;
}

}  // namespace rapid
