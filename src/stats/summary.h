// Cross-run summaries: mean with a Student-t confidence interval, used by
// the experiment harness to report "averaged over N runs, 95% CI" exactly as
// the paper's figures do.
#pragma once

#include <cstddef>
#include <vector>

namespace rapid {

struct Summary {
  std::size_t n = 0;
  double mean = 0;
  double stddev = 0;
  double ci_half_width = 0;  // half-width of the requested confidence interval

  double lo() const { return mean - ci_half_width; }
  double hi() const { return mean + ci_half_width; }
};

// confidence in (0, 1), e.g. 0.95.
Summary summarize(const std::vector<double>& samples, double confidence = 0.95);

// Student-t distribution helpers (exposed for tests and the paired t-test).
// Two-sided critical value t such that P(|T_df| <= t) = confidence.
double student_t_critical(std::size_t df, double confidence);
// CDF of the t distribution with df degrees of freedom.
double student_t_cdf(double t, std::size_t df);
// Regularized incomplete beta function I_x(a, b).
double incomplete_beta(double a, double b, double x);

}  // namespace rapid
