// Streaming statistics: Welford running moments, min/max tracking, and a
// windowless moving average used for the "average size of past transfer
// opportunities" state that RAPID's Estimate Delay consumes (Alg. 2 step 3).
#pragma once

#include <cstddef>
#include <vector>

namespace rapid {

class RunningMoments {
 public:
  void add(double x);
  void merge(const RunningMoments& other);

  std::size_t count() const { return n_; }
  bool empty() const { return n_ == 0; }
  double mean() const;
  // Sample variance (n-1 denominator); 0 when fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;
  double sum() const { return mean() * static_cast<double>(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0;
  double m2_ = 0;
  double min_ = 0;
  double max_ = 0;
};

// Exponentially weighted moving average. alpha = weight of the new sample.
// With alpha = 0 the estimate is the plain running mean, matching the paper's
// "moving average of past transfers" loosely while staying simple to reason
// about; RAPID uses the plain mean by default.
class MovingAverage {
 public:
  explicit MovingAverage(double alpha = 0.0) : alpha_(alpha) {}

  void add(double x);
  bool empty() const { return n_ == 0; }
  std::size_t count() const { return n_; }
  double value() const { return value_; }
  double value_or(double fallback) const { return n_ == 0 ? fallback : value_; }

  // Snapshot/restore: reinstates the exact (value, count) pair so subsequent
  // add() calls continue the same running estimate bit-for-bit.
  void restore(double value, std::size_t n) {
    value_ = value;
    n_ = n;
  }

 private:
  double alpha_;
  double value_ = 0;
  std::size_t n_ = 0;
};

// Percentile of a sample (nearest-rank). data is copied and sorted.
double percentile(std::vector<double> data, double p);

}  // namespace rapid
